//! The maintenance-protocol node: `A_LDS` (Listing 3) + `A_RANDOM` (Listing 4).
//!
//! Every node executes the same state machine on top of the round-synchronous
//! simulator. Overlay epoch `e` spans the even round `2e` (forwarding step of
//! `A_ROUTING` on the overlay `D_e`) and the odd round `2e + 1` (handover from
//! `D_e` to `D_{e+1}` plus neighbour introductions for `D_{e+1}`).
//!
//! The life of a (re-)join request started by a mature node `u` in epoch `s`:
//!
//! 1. even round `2s`: `u` computes the future position `h(v, s+λ+1)` for
//!    itself and every fresh node `v` it sponsors and sends the first
//!    forwarding copies towards the trajectory point `x_1`;
//! 2. the copies alternate forwarding (even rounds, current overlay) and
//!    handover (odd rounds, next overlay) steps, reaching the swarm of the
//!    target position after `λ` forwarding steps, in even round `2(s+λ)`;
//! 3. the swarm members spread the announcement (`AnnounceJoin`) to every
//!    current member whose position falls in the three responsibility
//!    intervals of the announced position;
//! 4. odd round `2(s+λ)+1`: every member that collected announcements
//!    introduces future neighbours to each other (`Create` messages);
//! 5. even round `2(s+λ+1)`: the `Create` messages arrive and form the
//!    neighbour sets of `D_{s+λ+1}` — the overlay has been rebuilt from
//!    scratch, two rounds after the adversary last saw anything about it.
//!
//! In parallel, `A_RANDOM` floats tokens (mature node identifiers) to uniform
//! random members via the same routing pipeline; fresh nodes spend tokens to
//! send `Connect` requests so that `Θ(δ)` mature nodes know them and keep
//! re-injecting them into the overlay.
//!
//! Deviations from the paper (documented in DESIGN.md): the bootstrap
//! construction of `D_0 … D_λ` is realized by letting the initial ("genesis")
//! nodes derive their neighbourhoods from the known initial member set during
//! the churn-free bootstrap phase, and token pools are small bounded FIFOs
//! instead of being cleared every round.

use std::collections::HashSet;
use std::sync::Arc;

use rand::seq::SliceRandom;
use rand::Rng;

use tsa_sim::{Ctx, Envelope, NodeId, Process, Round};

use crate::byzantine::MisbehaviorKind;
use crate::messages::ProtocolMsg;
use crate::params::MaintenanceParams;
use crate::snapshot::{NodeSnapshot, NodeStats};

/// A neighbour entry: identifier plus position in the relevant epoch.
pub(crate) type Neighbor = (NodeId, f64);

/// Ring distance on `[0,1)` for raw `f64` positions (hot path; avoids going
/// through the `Position` newtype for every comparison).
#[inline]
pub(crate) fn ring_distance(a: f64, b: f64) -> f64 {
    let d = (a - b).abs();
    if d <= 0.5 {
        d
    } else {
        1.0 - d
    }
}

/// The node state machine of the maintenance protocol.
pub struct ProtocolNode {
    params: MaintenanceParams,
    /// The initial member set, available only to genesis nodes and only used
    /// for epochs `< genesis_epochs` (the bootstrap substitute).
    genesis: Option<Arc<Vec<NodeId>>>,
    joined_at: Option<Round>,
    /// Neighbour set of the current overlay epoch.
    d_neighbors: Vec<Neighbor>,
    /// Epoch `d_neighbors` belongs to.
    d_epoch: u64,
    /// Announced `(node, position)` pairs for the *next* epoch, collected
    /// during the current odd round (the `H_t` variable of Listing 3).
    h_entries: Vec<Neighbor>,
    /// Token pool (identifiers of mature nodes), bounded FIFO.
    tokens: Vec<NodeId>,
    /// Connect slots (`c_1 … c_{2δ}` of Listing 4).
    slots: Vec<Option<NodeId>>,
    /// Token owners this node spent on neighbor repair in its last round
    /// (the samples behind the per-region sampling-age probe). Engine-side
    /// state only — deliberately not part of [`NodeStats`] or the snapshot,
    /// so artifacts are unaffected.
    repair_sampled: Vec<NodeId>,
    /// Statistics for the experiments.
    stats: NodeStats,
    /// When `Some`, the node runs this misbehavior instead of the honest
    /// protocol (`None` leaves the honest path untouched).
    byzantine: Option<MisbehaviorKind>,
}

impl ProtocolNode {
    /// Creates a node. `genesis` is `Some(initial member set)` for nodes
    /// created before the simulation starts and `None` for nodes churned in
    /// later.
    pub fn new(params: MaintenanceParams, genesis: Option<Arc<Vec<NodeId>>>) -> Self {
        let slots = vec![None; params.connect_slots()];
        ProtocolNode {
            params,
            genesis,
            joined_at: None,
            d_neighbors: Vec::new(),
            d_epoch: u64::MAX,
            h_entries: Vec::new(),
            tokens: Vec::new(),
            slots,
            repair_sampled: Vec::new(),
            stats: NodeStats::default(),
            byzantine: None,
        }
    }

    /// Assigns (or clears) the node's byzantine role. Call before its first
    /// round; the harness factory does this from
    /// [`MaintenanceParams::byzantine`].
    pub fn set_byzantine(&mut self, kind: Option<MisbehaviorKind>) {
        self.byzantine = kind;
    }

    /// The node's byzantine role, if any.
    pub fn byzantine_kind(&self) -> Option<MisbehaviorKind> {
        self.byzantine
    }

    /// The protocol parameters.
    pub fn params(&self) -> &MaintenanceParams {
        &self.params
    }

    /// `true` if this node was part of the initial network.
    pub fn is_genesis(&self) -> bool {
        self.genesis.is_some()
    }

    /// The node's age in rounds (0 before its first round).
    pub fn age(&self, now: Round) -> Round {
        self.joined_at.map(|j| now.saturating_sub(j)).unwrap_or(0)
    }

    /// `true` if the node counts as *mature* at `now` (genesis nodes are
    /// mature from the start; others after `λ' = 2λ + 4` rounds).
    pub fn is_mature(&self, now: Round) -> bool {
        self.is_genesis() || self.age(now) >= self.params.maturity_age()
    }

    /// `true` if the node currently holds a neighbour set for epoch `epoch`
    /// (i.e. it is actually wired into the overlay).
    pub fn participates(&self, epoch: u64) -> bool {
        self.d_epoch == epoch && !self.d_neighbors.is_empty()
    }

    /// The token owners this node spent on neighbor repair in its last
    /// round (empty when it did not repair). The per-region sampling-age
    /// probe reads these after every step.
    pub fn repair_samples(&self) -> &[NodeId] {
        &self.repair_sampled
    }

    /// A copy of the node's observable state for analysis.
    pub fn snapshot(&self, now: Round) -> NodeSnapshot {
        NodeSnapshot {
            joined_at: self.joined_at.unwrap_or(now),
            mature: self.is_mature(now),
            genesis: self.is_genesis(),
            epoch: self.d_epoch,
            participating: !self.d_neighbors.is_empty(),
            neighbors: self.d_neighbors.iter().map(|(id, _)| *id).collect(),
            tokens_on_hand: self.tokens.len(),
            slots_used: self.slots.iter().filter(|s| s.is_some()).count(),
            stats: self.stats.clone(),
        }
    }

    // ------------------------------------------------------------------
    // Neighbourhood helpers
    // ------------------------------------------------------------------

    /// The node's own position in overlay epoch `epoch`.
    fn own_position(&self, ctx: &Ctx<'_, ProtocolMsg>, epoch: u64) -> f64 {
        ctx.position_hash(ctx.id(), epoch)
    }

    /// `true` if the bootstrap substitute applies to `epoch` for this node.
    fn genesis_applies(&self, epoch: u64) -> bool {
        self.genesis.is_some() && epoch < self.params.genesis_epochs
    }

    /// Computes the Definition-5 neighbour set of this node for a genesis
    /// epoch directly from the initial member set.
    fn genesis_neighbors(&self, ctx: &Ctx<'_, ProtocolMsg>, epoch: u64) -> Vec<Neighbor> {
        let Some(genesis) = &self.genesis else {
            return Vec::new();
        };
        let own = self.own_position(ctx, epoch);
        let list_r = self.params.overlay.list_radius();
        let db_r = self.params.overlay.debruijn_radius();
        let own_half = own / 2.0;
        let own_half_plus = (own + 1.0) / 2.0;
        let mut out = Vec::new();
        for &v in genesis.iter() {
            if v == ctx.id() {
                continue;
            }
            let p = ctx.position_hash(v, epoch);
            if ring_distance(p, own) <= list_r
                || ring_distance(p, own_half) <= db_r
                || ring_distance(p, own_half_plus) <= db_r
                || ring_distance(own, p / 2.0) <= db_r
                || ring_distance(own, (p + 1.0) / 2.0) <= db_r
            {
                out.push((v, p));
            }
        }
        out
    }

    /// Members of the *current* overlay within `radius` of `point`, according
    /// to this node's neighbour knowledge (plus itself if close enough).
    fn current_members_near(
        &self,
        ctx: &Ctx<'_, ProtocolMsg>,
        epoch: u64,
        point: f64,
        radius: f64,
    ) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self
            .d_neighbors
            .iter()
            .filter(|(_, p)| ring_distance(*p, point) <= radius)
            .map(|(id, _)| *id)
            .collect();
        let own = self.own_position(ctx, epoch);
        if ring_distance(own, point) <= radius {
            out.push(ctx.id());
        }
        out
    }

    /// Members of the *next* overlay within `radius` of `point`: from the
    /// collected announcements, or from genesis knowledge during bootstrap.
    fn next_members_near(
        &self,
        ctx: &Ctx<'_, ProtocolMsg>,
        next_epoch: u64,
        point: f64,
        radius: f64,
    ) -> Vec<NodeId> {
        if self.genesis_applies(next_epoch) {
            let genesis = self.genesis.as_ref().expect("genesis_applies checked");
            return genesis
                .iter()
                .filter(|&&v| ring_distance(ctx.position_hash(v, next_epoch), point) <= radius)
                .copied()
                .collect();
        }
        self.h_entries
            .iter()
            .filter(|(_, p)| ring_distance(*p, point) <= radius)
            .map(|(id, _)| *id)
            .collect()
    }

    /// The three responsibility intervals of a position `p` in the next
    /// overlay, expressed as `(center, radius)` pairs: `⟨p ± 2cλ/n⟩`,
    /// `⟨p/2 ± 3cλ/2n⟩`, `⟨(p+1)/2 ± 3cλ/2n⟩`.
    fn responsibility(&self, p: f64) -> [(f64, f64); 3] {
        [
            (p, self.params.overlay.list_radius()),
            (p / 2.0, self.params.overlay.debruijn_radius()),
            ((p + 1.0) / 2.0, self.params.overlay.debruijn_radius()),
        ]
    }

    /// `true` if a node at position `q` is a Definition-5 neighbour (in either
    /// direction) of a node at position `p`.
    fn are_neighbors(&self, p: f64, q: f64) -> bool {
        let list_r = self.params.overlay.list_radius();
        let db_r = self.params.overlay.debruijn_radius();
        ring_distance(p, q) <= list_r
            || ring_distance(p / 2.0, q) <= db_r
            || ring_distance((p + 1.0) / 2.0, q) <= db_r
            || ring_distance(q / 2.0, p) <= db_r
            || ring_distance((q + 1.0) / 2.0, p) <= db_r
    }

    /// The `i`-th most significant bit (1-indexed) of `target`'s λ-bit prefix.
    fn target_bit(&self, target: f64, i: u32) -> u8 {
        let lambda = self.params.lambda();
        let bits = (target * (1u64 << lambda) as f64) as u64;
        let bits = bits.min((1u64 << lambda) - 1);
        ((bits >> (lambda - i)) & 1) as u8
    }

    // ------------------------------------------------------------------
    // Even round: forwarding, delivery, join/token emission (Listing 3 even
    // block + Listing 4).
    // ------------------------------------------------------------------

    fn even_round(
        &mut self,
        ctx: &mut Ctx<'_, ProtocolMsg>,
        inbox: &[Envelope<ProtocolMsg>],
        epoch: u64,
    ) {
        let lambda = self.params.lambda();
        let swarm_r = self.params.swarm_radius();
        let replication = self.params.replication;

        // (1) Assemble this epoch's neighbour set from the CREATE messages
        //     (or from genesis knowledge during the bootstrap phase).
        let mut creates: Vec<Neighbor> = inbox
            .iter()
            .filter_map(|env| match env.payload {
                ProtocolMsg::Create {
                    node,
                    epoch: e,
                    position,
                } if e == epoch && node != ctx.id() => Some((node, position)),
                _ => None,
            })
            .collect();
        creates.sort_by_key(|a| a.0);
        creates.dedup_by(|a, b| a.0 == b.0);
        self.stats.creates_received += creates.len();
        if self.genesis_applies(epoch) {
            self.d_neighbors = self.genesis_neighbors(ctx, epoch);
        } else {
            self.d_neighbors = creates;
        }
        self.d_epoch = epoch;
        let participating = !self.d_neighbors.is_empty();
        if participating {
            self.stats.epochs_participated += 1;
        }

        // (2) Advance in-flight route messages (forwarding step) and deliver
        //     completed ones. Deduplicate copies of the same logical message.
        let mut seen: HashSet<(u8, NodeId, u64, u32)> = HashSet::new();
        let mut announce_out: Vec<(NodeId, u64, f64)> = Vec::new();
        let mut forward_out: Vec<(NodeId, ProtocolMsg)> = Vec::new();
        let mut token_deliveries: Vec<(NodeId, NodeId)> = Vec::new();

        for env in inbox {
            match env.payload {
                ProtocolMsg::RouteJoin {
                    node,
                    target_epoch,
                    step,
                    point,
                } => {
                    self.stats.route_copies_received += 1;
                    if !participating || !seen.insert((0, node, target_epoch, step)) {
                        continue;
                    }
                    let target = ctx.position_hash(node, target_epoch);
                    if step >= lambda {
                        // Delivered: spread the announcement (Listing 3 line 10).
                        announce_out.push((node, target_epoch, target));
                    } else {
                        let bit = self.target_bit(target, step + 1);
                        let next_point = (point + bit as f64) / 2.0;
                        let candidates = self.current_members_near(ctx, epoch, next_point, swarm_r);
                        let chosen = choose_up_to(&candidates, replication, &mut ctx.rng);
                        for to in chosen {
                            forward_out.push((
                                to,
                                ProtocolMsg::RouteJoin {
                                    node,
                                    target_epoch,
                                    step: step + 1,
                                    point: next_point,
                                },
                            ));
                        }
                    }
                }
                ProtocolMsg::RouteToken {
                    owner,
                    delta,
                    target,
                    step,
                    point,
                } => {
                    self.stats.route_copies_received += 1;
                    if !participating || !seen.insert((1, owner, delta as u64, step)) {
                        continue;
                    }
                    if step >= lambda {
                        // Sampling delivery rule (Listing 2): pick the swarm
                        // member with exactly `delta` members clockwise
                        // between the target point and itself.
                        let members = self.current_members_near(ctx, epoch, target, swarm_r);
                        if let Some(receiver) =
                            delta_select(ctx, epoch, &members, target, delta as usize)
                        {
                            token_deliveries.push((receiver, owner));
                        }
                    } else {
                        let bit = self.target_bit(target, step + 1);
                        let next_point = (point + bit as f64) / 2.0;
                        let candidates = self.current_members_near(ctx, epoch, next_point, swarm_r);
                        let chosen = choose_up_to(&candidates, replication, &mut ctx.rng);
                        for to in chosen {
                            forward_out.push((
                                to,
                                ProtocolMsg::RouteToken {
                                    owner,
                                    delta,
                                    target,
                                    step: step + 1,
                                    point: next_point,
                                },
                            ));
                        }
                    }
                }
                _ => {}
            }
        }

        // Spread announcements to every current member responsible for the
        // announced position (Listing 3 line 10).
        for (node, target_epoch, position) in &announce_out {
            self.stats.joins_delivered += 1;
            let mut receivers: Vec<NodeId> = Vec::new();
            for (center, radius) in self.responsibility(*position) {
                receivers.extend(self.current_members_near(ctx, epoch, center, radius));
            }
            receivers.sort();
            receivers.dedup();
            for to in receivers {
                forward_out.push((
                    to,
                    ProtocolMsg::AnnounceJoin {
                        node: *node,
                        epoch: *target_epoch,
                        position: *position,
                    },
                ));
            }
        }
        for (to, owner) in token_deliveries {
            forward_out.push((to, ProtocolMsg::Token { owner }));
        }
        for (to, msg) in forward_out {
            ctx.send(to, msg);
        }

        // (3) Start new join requests for this node and every fresh node it
        //     currently sponsors (Listing 3 lines 14-17), plus the per-round
        //     token emission of A_RANDOM (Listing 4).
        if participating && self.is_mature(ctx.round()) {
            let own = self.own_position(ctx, epoch);
            let target_epoch = epoch + lambda as u64 + 1;
            let mut joiners: Vec<NodeId> = vec![ctx.id()];
            joiners.extend(self.slots.iter().flatten().copied());
            joiners.sort();
            joiners.dedup();
            for node in joiners {
                let target = ctx.position_hash(node, target_epoch);
                let bit = self.target_bit(target, 1);
                let next_point = (own + bit as f64) / 2.0;
                let candidates = self.current_members_near(ctx, epoch, next_point, swarm_r);
                let chosen = choose_up_to(&candidates, replication, &mut ctx.rng);
                self.stats.joins_started += 1;
                for to in chosen {
                    ctx.send(
                        to,
                        ProtocolMsg::RouteJoin {
                            node,
                            target_epoch,
                            step: 1,
                            point: next_point,
                        },
                    );
                }
            }

            // Token emission: τ tokens carrying this node's identifier, each
            // routed to a uniformly random point with a uniform offset Δ.
            let max_delta = (2.0 * self.params.overlay.c * lambda as f64).round() as u32;
            for _ in 0..self.params.tau {
                let target: f64 = ctx.rng.gen();
                let delta: u32 = ctx.rng.gen_range(0..=max_delta);
                let bit = self.target_bit(target, 1);
                let next_point = (own + bit as f64) / 2.0;
                let candidates = self.current_members_near(ctx, epoch, next_point, swarm_r);
                let chosen = choose_up_to(&candidates, replication, &mut ctx.rng);
                for to in chosen {
                    ctx.send(
                        to,
                        ProtocolMsg::RouteToken {
                            owner: ctx.id(),
                            delta,
                            target,
                            step: 1,
                            point: next_point,
                        },
                    );
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Odd round: handover and introductions (Listing 3 odd block).
    // ------------------------------------------------------------------

    fn odd_round(
        &mut self,
        ctx: &mut Ctx<'_, ProtocolMsg>,
        inbox: &[Envelope<ProtocolMsg>],
        epoch: u64,
    ) {
        let swarm_r = self.params.swarm_radius();
        let replication = self.params.replication;
        let next_epoch = epoch + 1;

        // (1) Collect announcements into H_t.
        self.h_entries.clear();
        for env in inbox {
            if let ProtocolMsg::AnnounceJoin {
                node,
                epoch: e,
                position,
            } = env.payload
            {
                if e == next_epoch {
                    self.stats.announces_received += 1;
                    self.h_entries.push((node, position));
                }
            }
        }
        self.h_entries.sort_by_key(|a| a.0);
        self.h_entries.dedup_by(|a, b| a.0 == b.0);

        // (2) Handover step: every route copy received this round moves to the
        //     next overlay's swarm at its current trajectory point.
        let mut seen: HashSet<(u8, NodeId, u64, u32)> = HashSet::new();
        let mut out: Vec<(NodeId, ProtocolMsg)> = Vec::new();
        for env in inbox {
            let (key, point, msg) = match env.payload {
                ProtocolMsg::RouteJoin {
                    node,
                    target_epoch,
                    step,
                    point,
                } => ((0u8, node, target_epoch, step), point, env.payload),
                ProtocolMsg::RouteToken {
                    owner,
                    delta,
                    step,
                    point,
                    ..
                } => ((1u8, owner, delta as u64, step), point, env.payload),
                _ => continue,
            };
            self.stats.route_copies_received += 1;
            if !seen.insert(key) {
                continue;
            }
            let candidates = self.next_members_near(ctx, next_epoch, point, swarm_r);
            let chosen = choose_up_to(&candidates, replication, &mut ctx.rng);
            for to in chosen {
                out.push((to, msg));
            }
        }

        // (3) Introductions: for every pair of announced nodes that will be
        //     neighbours in D_{next_epoch}, send each of them the other's
        //     identifier and position (Listing 3 lines 25-26).
        let entries = self.h_entries.clone();
        for (i, &(v, pv)) in entries.iter().enumerate() {
            for &(w, pw) in entries.iter().skip(i + 1) {
                if self.are_neighbors(pv, pw) {
                    out.push((
                        w,
                        ProtocolMsg::Create {
                            node: v,
                            epoch: next_epoch,
                            position: pv,
                        },
                    ));
                    out.push((
                        v,
                        ProtocolMsg::Create {
                            node: w,
                            epoch: next_epoch,
                            position: pw,
                        },
                    ));
                }
            }
        }
        for (to, msg) in out {
            ctx.send(to, msg);
        }
        self.h_entries.clear();
    }

    // ------------------------------------------------------------------
    // A_RANDOM bookkeeping executed every round (Listing 4).
    // ------------------------------------------------------------------

    fn random_overlay_round(
        &mut self,
        ctx: &mut Ctx<'_, ProtocolMsg>,
        inbox: &[Envelope<ProtocolMsg>],
    ) {
        let now = ctx.round();
        let delta = self.params.delta;
        self.stats.connects_received_last_round = 0;
        self.stats.tokens_received_last_round = 0;
        self.repair_sampled.clear();

        // Reset connect slots at the start of every round (Listing 4 line 35).
        for s in self.slots.iter_mut() {
            *s = None;
        }

        // Process CONNECT and directly delivered TOKEN messages.
        for env in inbox {
            match env.payload {
                ProtocolMsg::Connect { node } => {
                    self.stats.connects_received += 1;
                    self.stats.connects_received_last_round += 1;
                    let free: Vec<usize> = self
                        .slots
                        .iter()
                        .enumerate()
                        .filter(|(_, s)| s.is_none())
                        .map(|(i, _)| i)
                        .collect();
                    if let Some(&slot) = free.as_slice().choose(&mut ctx.rng) {
                        self.slots[slot] = Some(node);
                    }
                }
                ProtocolMsg::Token { owner } => {
                    self.stats.tokens_received += 1;
                    self.stats.tokens_received_last_round += 1;
                    // A mature node keeps the token with probability 1/2 and
                    // otherwise forwards it to a random connect slot
                    // (Listing 4, token forwarding step); fresh nodes always
                    // keep what they are given.
                    if self.is_mature(now) && ctx.rng.gen::<bool>() {
                        let slot = ctx.rng.gen_range(0..self.slots.len().max(1));
                        if let Some(Some(fresh)) = self.slots.get(slot) {
                            ctx.send(*fresh, ProtocolMsg::Token { owner });
                        }
                        // otherwise: dropped, preserving token independence.
                    } else {
                        self.tokens.push(owner);
                    }
                }
                _ => {}
            }
        }

        // Bound the token pool (freshness substitute for the paper's
        // clear-every-round rule).
        let cap = 4 * self.params.tau.max(delta);
        if self.tokens.len() > cap {
            let excess = self.tokens.len() - cap;
            self.tokens.drain(..excess);
        }

        // Handle nodes that joined via this node this round: send CONNECTs on
        // their behalf and supply them with tokens (Listing 4 "Upon v joining").
        let sponsored: Vec<NodeId> = ctx.sponsored().to_vec();
        for new_node in sponsored {
            let picked = pick_tokens(&self.tokens, delta, &mut ctx.rng);
            for owner in &picked {
                ctx.send(*owner, ProtocolMsg::Connect { node: new_node });
            }
            let supply = pick_tokens(&self.tokens, delta, &mut ctx.rng);
            for owner in supply {
                ctx.send(new_node, ProtocolMsg::Token { owner });
            }
            // Make sure the newcomer is sponsored into the overlay even before
            // its CONNECTs land: keep it in one of our own slots.
            if let Some(slot) = self.slots.iter_mut().find(|s| s.is_none()) {
                *slot = Some(new_node);
            }
        }

        // Fresh nodes (and mature nodes that fell out of the overlay) spend
        // tokens to stay known by Θ(δ) mature nodes.
        let integrated = self.participates(now / 2);
        if !self.is_mature(now) || !integrated {
            let picked = pick_tokens(&self.tokens, delta, &mut ctx.rng);
            for owner in picked {
                self.repair_sampled.push(owner);
                ctx.send(owner, ProtocolMsg::Connect { node: ctx.id() });
            }
        }
    }

    // ------------------------------------------------------------------
    // Byzantine roles
    // ------------------------------------------------------------------

    /// One honest activation: the even/odd maintenance round plus the
    /// random-overlay round, exactly as the paper specifies.
    fn honest_round(
        &mut self,
        ctx: &mut Ctx<'_, ProtocolMsg>,
        inbox: &[Envelope<ProtocolMsg>],
        epoch: u64,
    ) {
        if ctx.round() % 2 == 0 {
            self.even_round(ctx, inbox, epoch);
        } else {
            self.odd_round(ctx, inbox, epoch);
        }
        self.random_overlay_round(ctx, inbox);
    }

    /// One byzantine activation: the honest machinery still runs — the node
    /// keeps the protocol's cadence, state shape and RNG consumption — but
    /// the misbehavior wraps it: selective forwarding censors the inbox
    /// before the honest code reads it, the other kinds rewrite the claims
    /// the honest code queued before they reach the network.
    fn byzantine_round(
        &mut self,
        ctx: &mut Ctx<'_, ProtocolMsg>,
        inbox: &[Envelope<ProtocolMsg>],
        epoch: u64,
        kind: MisbehaviorKind,
    ) {
        let censored: Vec<Envelope<ProtocolMsg>>;
        let inbox = if kind == MisbehaviorKind::SelectiveForward {
            censored = inbox
                .iter()
                .filter(|env| {
                    !matches!(
                        env.payload,
                        ProtocolMsg::RouteJoin { .. } | ProtocolMsg::RouteToken { .. }
                    )
                })
                .cloned()
                .collect();
            censored.as_slice()
        } else {
            inbox
        };
        self.honest_round(ctx, inbox, epoch);

        let me = ctx.id();
        let mut sent = std::mem::take(ctx.queued_mut());
        match kind {
            // The censorship already happened on the inbound side.
            MisbehaviorKind::SelectiveForward => {}
            // Claims two epochs stale: exactly the staleness the
            // two-steps-ahead rebuild is supposed to outrun.
            MisbehaviorKind::StaleClaims => {
                for (_, msg) in sent.iter_mut() {
                    if let ProtocolMsg::Create {
                        node,
                        epoch,
                        position,
                    }
                    | ProtocolMsg::AnnounceJoin {
                        node,
                        epoch,
                        position,
                    } = msg
                    {
                        *position = ctx.position_hash(*node, epoch.saturating_sub(2));
                    }
                }
            }
            // Antipodal positions: maximally wrong, still in [0,1).
            MisbehaviorKind::ForgedPosition => {
                for (_, msg) in sent.iter_mut() {
                    if let ProtocolMsg::Create { position, .. }
                    | ProtocolMsg::AnnounceJoin { position, .. } = msg
                    {
                        *position = (*position + 0.5) % 1.0;
                    }
                }
            }
            // Introductions and tokens all name the byzantine node itself:
            // every CREATE/CONNECT-machinery reply funnels edges to it.
            MisbehaviorKind::BogusReplies => {
                for (_, msg) in sent.iter_mut() {
                    match msg {
                        ProtocolMsg::Create { node, .. } => *node = me,
                        ProtocolMsg::Token { owner } => *owner = me,
                        _ => {}
                    }
                }
            }
        }
        *ctx.queued_mut() = sent;
    }
}

impl Process for ProtocolNode {
    type Msg = ProtocolMsg;

    fn on_round(&mut self, ctx: &mut Ctx<'_, ProtocolMsg>, inbox: &[Envelope<ProtocolMsg>]) {
        if self.joined_at.is_none() {
            self.joined_at = Some(ctx.round());
        }
        let epoch = ctx.round() / 2;
        match self.byzantine {
            None => self.honest_round(ctx, inbox, epoch),
            Some(kind) => self.byzantine_round(ctx, inbox, epoch, kind),
        }
        self.stats.last_round = ctx.round();
        self.stats.messages_sent += ctx.queued();
    }

    fn state_digest(&self) -> u64 {
        // A weak digest: the adversary may eventually learn how connected a
        // node is, but never its future positions.
        (self.d_neighbors.len() as u64) << 32 | self.tokens.len() as u64
    }
}

/// Chooses up to `count` distinct elements of `candidates` uniformly at random.
fn choose_up_to<R: Rng + ?Sized>(candidates: &[NodeId], count: usize, rng: &mut R) -> Vec<NodeId> {
    if candidates.len() <= count {
        return candidates.to_vec();
    }
    candidates.choose_multiple(rng, count).copied().collect()
}

/// Picks `count` tokens uniformly at random (with replacement across calls but
/// without replacement within one call) from the pool.
fn pick_tokens<R: Rng + ?Sized>(pool: &[NodeId], count: usize, rng: &mut R) -> Vec<NodeId> {
    if pool.is_empty() {
        return Vec::new();
    }
    let mut distinct: Vec<NodeId> = pool.to_vec();
    distinct.sort();
    distinct.dedup();
    if distinct.len() <= count {
        return distinct;
    }
    distinct.choose_multiple(rng, count).copied().collect()
}

/// The `A_SAMPLING` delivery rule: among `members` (the known swarm of
/// `target`), select the node with exactly `delta` members clockwise between
/// `target` and itself.
fn delta_select(
    ctx: &Ctx<'_, ProtocolMsg>,
    epoch: u64,
    members: &[NodeId],
    target: f64,
    delta: usize,
) -> Option<NodeId> {
    let mut right: Vec<(f64, NodeId)> = members
        .iter()
        .map(|&id| {
            let p = ctx.position_hash(id, epoch);
            (((p - target).rem_euclid(1.0)), id)
        })
        .filter(|(off, _)| *off <= 0.5)
        .collect();
    right.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
    right.get(delta).map(|(_, id)| *id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn params() -> MaintenanceParams {
        MaintenanceParams::new(64)
    }

    fn genesis(n: u64) -> Arc<Vec<NodeId>> {
        Arc::new((0..n).map(NodeId).collect())
    }

    #[test]
    fn ring_distance_matches_position_type() {
        assert!((ring_distance(0.1, 0.9) - 0.2).abs() < 1e-12);
        assert!((ring_distance(0.3, 0.4) - 0.1).abs() < 1e-12);
        assert_eq!(ring_distance(0.5, 0.5), 0.0);
    }

    #[test]
    fn choose_up_to_caps_at_candidates() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let c: Vec<NodeId> = (0..3).map(NodeId).collect();
        assert_eq!(choose_up_to(&c, 5, &mut rng).len(), 3);
        assert_eq!(choose_up_to(&c, 2, &mut rng).len(), 2);
        let picked = choose_up_to(&c, 2, &mut rng);
        assert!(picked.iter().all(|id| c.contains(id)));
    }

    #[test]
    fn pick_tokens_deduplicates() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let pool = vec![NodeId(1), NodeId(1), NodeId(2)];
        let picked = pick_tokens(&pool, 5, &mut rng);
        assert_eq!(picked, vec![NodeId(1), NodeId(2)]);
        assert!(pick_tokens(&[], 3, &mut rng).is_empty());
    }

    #[test]
    fn maturity_rules() {
        let p = params();
        let mut node = ProtocolNode::new(p, None);
        node.joined_at = Some(10);
        assert!(!node.is_mature(10));
        assert!(!node.is_mature(10 + p.maturity_age() - 1));
        assert!(node.is_mature(10 + p.maturity_age()));
        let g = ProtocolNode::new(p, Some(genesis(4)));
        assert!(g.is_mature(0), "genesis nodes are mature immediately");
        assert!(g.is_genesis());
    }

    #[test]
    fn genesis_neighbors_match_definition_5() {
        let p = params();
        let g = genesis(64);
        let node = ProtocolNode::new(p, Some(g.clone()));
        let ctx: Ctx<'_, ProtocolMsg> = Ctx::new(NodeId(0), 0, 0, &[], 7, 7);
        let neighbors = node.genesis_neighbors(&ctx, 0);
        assert!(!neighbors.is_empty(), "a genesis node must have neighbours");
        let own = ctx.position_hash(NodeId(0), 0);
        for (id, pos) in &neighbors {
            assert_ne!(*id, NodeId(0));
            assert!(
                node.are_neighbors(own, *pos),
                "genesis neighbour {id} at {pos} is not a Definition-5 neighbour"
            );
        }
    }

    #[test]
    fn snapshot_reflects_state() {
        let p = params();
        let mut node = ProtocolNode::new(p, Some(genesis(8)));
        node.joined_at = Some(0);
        node.d_neighbors = vec![(NodeId(1), 0.5)];
        node.d_epoch = 3;
        node.tokens = vec![NodeId(2), NodeId(3)];
        let snap = node.snapshot(6);
        assert!(snap.mature);
        assert!(snap.genesis);
        assert!(snap.participating);
        assert_eq!(snap.epoch, 3);
        assert_eq!(snap.neighbors, vec![NodeId(1)]);
        assert_eq!(snap.tokens_on_hand, 2);
    }

    #[test]
    fn target_bits_follow_binary_expansion() {
        let p = params();
        let node = ProtocolNode::new(p, None);
        // 0.75 = 0.11 in binary: the first two bits are 1.
        assert_eq!(node.target_bit(0.75, 1), 1);
        assert_eq!(node.target_bit(0.75, 2), 1);
        assert_eq!(node.target_bit(0.25, 1), 0);
        assert_eq!(node.target_bit(0.25, 2), 1);
    }

    #[test]
    fn delta_select_orders_clockwise() {
        let p = params();
        let node = ProtocolNode::new(p, Some(genesis(4)));
        let ctx: Ctx<'_, ProtocolMsg> = Ctx::new(NodeId(0), 0, 0, &[], 3, 3);
        // Build the member set from the hash positions themselves so ordering
        // is well-defined.
        let members: Vec<NodeId> = (0..4).map(NodeId).collect();
        let target = 0.0;
        let first = delta_select(&ctx, 0, &members, target, 0);
        let second = delta_select(&ctx, 0, &members, target, 1);
        assert!(first.is_some());
        if let (Some(a), Some(b)) = (first, second) {
            assert_ne!(a, b);
            let pa = (ctx.position_hash(a, 0) - target).rem_euclid(1.0);
            let pb = (ctx.position_hash(b, 0) - target).rem_euclid(1.0);
            assert!(pa <= pb, "delta ordering must be clockwise");
        }
        let _ = node;
    }

    #[test]
    fn first_round_sets_join_round_and_emits_messages() {
        let p = params();
        let g = genesis(64);
        let mut node = ProtocolNode::new(p, Some(g));
        let mut ctx: Ctx<'_, ProtocolMsg> = Ctx::new(NodeId(0), 0, 0, &[], 11, 11);
        node.on_round(&mut ctx, &[]);
        assert_eq!(node.joined_at, Some(0));
        assert!(node.participates(0), "genesis node participates in epoch 0");
        assert!(
            ctx.queued() > 0,
            "a participating mature node must start join requests and tokens"
        );
    }

    #[test]
    fn non_genesis_node_is_idle_until_contacted() {
        let p = params();
        let mut node = ProtocolNode::new(p, None);
        let mut ctx: Ctx<'_, ProtocolMsg> = Ctx::new(NodeId(99), 4, 4, &[], 11, 11);
        node.on_round(&mut ctx, &[]);
        // No tokens, no neighbours: nothing can be sent yet.
        assert_eq!(ctx.queued(), 0);
        assert!(!node.participates(2));
    }

    #[test]
    fn fresh_node_spends_tokens_on_connects() {
        let p = params();
        let mut node = ProtocolNode::new(p, None);
        let inbox = vec![
            Envelope::new(
                NodeId(1),
                NodeId(99),
                3,
                ProtocolMsg::Token { owner: NodeId(5) },
            ),
            Envelope::new(
                NodeId(1),
                NodeId(99),
                3,
                ProtocolMsg::Token { owner: NodeId(6) },
            ),
        ];
        let mut ctx: Ctx<'_, ProtocolMsg> = Ctx::new(NodeId(99), 4, 4, &[], 11, 11);
        node.on_round(&mut ctx, &inbox);
        let out = ctx.into_outbox().into_inner();
        let connects: Vec<&(NodeId, ProtocolMsg)> = out
            .iter()
            .filter(|(_, m)| matches!(m, ProtocolMsg::Connect { .. }))
            .collect();
        assert!(
            !connects.is_empty(),
            "a fresh node with tokens must send CONNECTs"
        );
        for (to, _) in connects {
            assert!([NodeId(5), NodeId(6)].contains(to));
        }
    }

    #[test]
    fn mature_node_assigns_connects_to_slots() {
        let p = params();
        let g = genesis(64);
        let mut node = ProtocolNode::new(p, Some(g));
        node.joined_at = Some(0);
        let inbox = vec![Envelope::new(
            NodeId(77),
            NodeId(0),
            9,
            ProtocolMsg::Connect { node: NodeId(77) },
        )];
        let mut ctx: Ctx<'_, ProtocolMsg> = Ctx::new(NodeId(0), 10, 0, &[], 11, 11);
        node.on_round(&mut ctx, &inbox);
        assert_eq!(node.snapshot(10).slots_used, 1);
        assert_eq!(node.snapshot(10).stats.connects_received, 1);
    }

    #[test]
    fn sponsor_supplies_newcomer_with_tokens_and_connects() {
        let p = params();
        let g = genesis(64);
        let mut node = ProtocolNode::new(p, Some(g));
        node.joined_at = Some(0);
        node.tokens = vec![NodeId(3), NodeId(4), NodeId(5)];
        let sponsored = vec![NodeId(200)];
        let mut ctx: Ctx<'_, ProtocolMsg> = Ctx::new(NodeId(0), 31, 0, &sponsored, 11, 11);
        node.on_round(&mut ctx, &[]);
        let out = ctx.into_outbox().into_inner();
        let tokens_to_newcomer = out
            .iter()
            .filter(|(to, m)| *to == NodeId(200) && matches!(m, ProtocolMsg::Token { .. }))
            .count();
        let connects_for_newcomer = out
            .iter()
            .filter(|(_, m)| matches!(m, ProtocolMsg::Connect { node } if *node == NodeId(200)))
            .count();
        assert!(tokens_to_newcomer > 0, "the sponsor must supply tokens");
        assert!(
            connects_for_newcomer > 0,
            "the sponsor must announce the newcomer"
        );
    }
}
