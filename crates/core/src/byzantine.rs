//! Byzantine node roles: nodes that fail by *lying* instead of leaving.
//!
//! The paper's adversary only churns nodes; every surviving node runs the
//! protocol faithfully. A byzantine node keeps the protocol's cadence (so
//! the engines need no scheduling changes) but misbehaves inside its own
//! activation: it rewrites the claims its honest machinery queued, discards
//! messages it was supposed to forward, or answers introduction machinery
//! with bogus identities. Which nodes are byzantine is a pure function of
//! the node id ([`ByzantineSpec::is_byzantine`]), so the role assignment is
//! identical on all three engines, across churn, and at any thread cap.

use serde::{Deserialize, Serialize};
use tsa_sim::NodeId;

/// The misbehavior a byzantine node runs every activation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MisbehaviorKind {
    /// Announces positions two epochs stale: every position claim in an
    /// outgoing `CREATE` or `AnnounceJoin` is evaluated at `epoch - 2`
    /// instead of the epoch the message names.
    StaleClaims,
    /// Forges positions: every outgoing position claim is moved to the
    /// antipodal point of the ring (`(p + 0.5) mod 1`).
    ForgedPosition,
    /// Selective forwarding: silently discards every in-flight `RouteJoin`
    /// and `RouteToken` it should have forwarded.
    SelectiveForward,
    /// Bogus CREATE/CONNECT replies: every outgoing `Create` and `Token`
    /// names the byzantine node itself instead of the real neighbour or
    /// token owner.
    BogusReplies,
}

impl MisbehaviorKind {
    /// Every misbehavior, in sweep order.
    pub const ALL: [MisbehaviorKind; 4] = [
        MisbehaviorKind::StaleClaims,
        MisbehaviorKind::ForgedPosition,
        MisbehaviorKind::SelectiveForward,
        MisbehaviorKind::BogusReplies,
    ];

    /// A compact label for tables and sweep axes.
    pub fn label(&self) -> &'static str {
        match self {
            MisbehaviorKind::StaleClaims => "stale",
            MisbehaviorKind::ForgedPosition => "forged",
            MisbehaviorKind::SelectiveForward => "selfwd",
            MisbehaviorKind::BogusReplies => "bogus",
        }
    }
}

/// Which nodes are byzantine, and what they do: a `num/den` fraction of the
/// id space runs `kind`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ByzantineSpec {
    /// Numerator of the byzantine fraction.
    pub num: u64,
    /// Denominator of the byzantine fraction.
    pub den: u64,
    /// The misbehavior every byzantine node runs.
    pub kind: MisbehaviorKind,
}

impl ByzantineSpec {
    /// A spec making every node whose id falls in the `num/den` residue
    /// slice run `kind`.
    pub fn fraction(num: u64, den: u64, kind: MisbehaviorKind) -> Self {
        ByzantineSpec { num, den, kind }
    }

    /// `true` if `id` takes the byzantine role. Ids are assigned densely by
    /// the engines, so taking residues `< num` modulo `den` spreads the
    /// byzantine fraction evenly over the id space — a pure function of the
    /// id, identical on every engine and stable across churn (a rejoining
    /// id keeps its role).
    pub fn is_byzantine(&self, id: NodeId) -> bool {
        self.num > 0 && id.raw() % self.den.max(1) < self.num
    }

    /// The byzantine fraction as a float (for reports).
    pub fn fraction_value(&self) -> f64 {
        self.num as f64 / self.den.max(1) as f64
    }

    /// A compact label, e.g. `byz1/8-selfwd`.
    pub fn label(&self) -> String {
        format!("byz{}/{}-{}", self.num, self.den, self.kind.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_fraction_slices_the_id_space_evenly() {
        let spec = ByzantineSpec::fraction(1, 4, MisbehaviorKind::SelectiveForward);
        let byz = (0..1000u64)
            .filter(|&i| spec.is_byzantine(NodeId(i)))
            .count();
        assert_eq!(byz, 250, "1/4 of a dense id range is byzantine");
        assert!(spec.is_byzantine(NodeId(0)));
        assert!(!spec.is_byzantine(NodeId(1)));
        assert!(spec.is_byzantine(NodeId(4)));
    }

    #[test]
    fn zero_fraction_marks_nobody() {
        let spec = ByzantineSpec::fraction(0, 8, MisbehaviorKind::StaleClaims);
        assert!((0..1000u64).all(|i| !spec.is_byzantine(NodeId(i))));
        assert_eq!(spec.fraction_value(), 0.0);
    }

    #[test]
    fn degenerate_denominators_never_panic() {
        let spec = ByzantineSpec::fraction(1, 0, MisbehaviorKind::BogusReplies);
        // den 0 is treated as 1: everything byzantine, nothing panics.
        assert!(spec.is_byzantine(NodeId(7)));
        assert_eq!(spec.fraction_value(), 1.0);
    }

    #[test]
    fn labels_are_compact() {
        assert_eq!(
            ByzantineSpec::fraction(1, 8, MisbehaviorKind::SelectiveForward).label(),
            "byz1/8-selfwd"
        );
        assert_eq!(MisbehaviorKind::StaleClaims.label(), "stale");
        assert_eq!(MisbehaviorKind::ForgedPosition.label(), "forged");
        assert_eq!(MisbehaviorKind::BogusReplies.label(), "bogus");
    }

    #[test]
    fn specs_round_trip_through_serde() {
        for kind in MisbehaviorKind::ALL {
            let spec = ByzantineSpec::fraction(3, 16, kind);
            let json = serde_json::to_string(&spec).expect("spec serializes");
            let back: ByzantineSpec = serde_json::from_str(&json).expect("spec deserializes");
            assert_eq!(spec, back);
        }
    }
}
