//! Observable per-node state used by experiments and tests.

use serde::Serialize;
use tsa_sim::{NodeId, Round};

/// Cumulative and per-round counters a node maintains about its own protocol
/// activity. These feed the congestion (Lemma 24) and random-overlay
/// (Lemmas 20-23) experiments.
#[derive(Clone, Debug, Default, Serialize)]
pub struct NodeStats {
    /// Total `CREATE` introductions received.
    pub creates_received: usize,
    /// Total join announcements received.
    pub announces_received: usize,
    /// Total in-flight route copies received (joins and tokens).
    pub route_copies_received: usize,
    /// Total join requests this node delivered (completed trajectories).
    pub joins_delivered: usize,
    /// Total join requests this node started (for itself or sponsored nodes).
    pub joins_started: usize,
    /// Total `CONNECT` requests received.
    pub connects_received: usize,
    /// `CONNECT` requests received in the most recent round (Lemma 22 bounds
    /// this by `2δ` in expectation terms).
    pub connects_received_last_round: usize,
    /// Total tokens received.
    pub tokens_received: usize,
    /// Tokens received in the most recent round (Lemma 20 wants `Θ(τ)`).
    pub tokens_received_last_round: usize,
    /// Number of epochs in which this node held a non-empty neighbour set.
    pub epochs_participated: usize,
    /// Total messages sent.
    pub messages_sent: usize,
    /// The last round this node executed.
    pub last_round: Round,
}

/// A point-in-time view of a node, extracted by the harness after each round.
#[derive(Clone, Debug, Serialize)]
pub struct NodeSnapshot {
    /// Round the node joined.
    pub joined_at: Round,
    /// Whether the node currently counts as mature.
    pub mature: bool,
    /// Whether it was part of the initial network.
    pub genesis: bool,
    /// The overlay epoch of its current neighbour set.
    pub epoch: u64,
    /// Whether it holds a non-empty neighbour set for that epoch.
    pub participating: bool,
    /// Its current overlay neighbours.
    pub neighbors: Vec<NodeId>,
    /// Tokens currently in its pool.
    pub tokens_on_hand: usize,
    /// Occupied connect slots.
    pub slots_used: usize,
    /// Protocol counters.
    pub stats: NodeStats,
}

impl NodeSnapshot {
    /// Degree in the current overlay.
    pub fn degree(&self) -> usize {
        self.neighbors.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_stats_are_zero() {
        let s = NodeStats::default();
        assert_eq!(s.creates_received, 0);
        assert_eq!(s.tokens_received_last_round, 0);
        assert_eq!(s.messages_sent, 0);
    }

    #[test]
    fn snapshot_degree_counts_neighbors() {
        let snap = NodeSnapshot {
            joined_at: 0,
            mature: true,
            genesis: true,
            epoch: 1,
            participating: true,
            neighbors: vec![NodeId(1), NodeId(2)],
            tokens_on_hand: 0,
            slots_used: 0,
            stats: NodeStats::default(),
        };
        assert_eq!(snap.degree(), 2);
    }
}
