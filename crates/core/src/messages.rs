//! Protocol messages of `A_LDS` and `A_RANDOM` (Listings 3 and 4).

use tsa_event::FaultAdapter;
use tsa_sim::NodeId;

/// A message of the maintenance protocol.
///
/// Positions are carried as raw `f64` values (they are always in `[0,1)`);
/// every message is `Copy` and a few dozen bytes, matching the model's
/// `O(polylog n)`-bit budget per edge and round. The serde derives are what
/// let the `tsa-net` wire codec frame the protocol onto real sockets.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum ProtocolMsg {
    /// Introduction: "`node` sits at `position` in overlay epoch `epoch` and is
    /// one of your neighbours there" (the `CREATE` message of Listing 3).
    Create {
        /// The introduced neighbour.
        node: NodeId,
        /// The overlay epoch the introduction is for.
        epoch: u64,
        /// The neighbour's position in that epoch.
        position: f64,
    },
    /// A join announcement spread within the target neighbourhood after a join
    /// request was delivered (the `JOIN` message exchanged between overlay
    /// members in Listing 3).
    AnnounceJoin {
        /// The (re-)joining node.
        node: NodeId,
        /// The epoch whose overlay the node will be part of.
        epoch: u64,
        /// The node's position in that epoch (`h(node, epoch)`).
        position: f64,
    },
    /// An in-flight join request travelling along its trajectory
    /// (`A_ROUTING` applied to a `JOIN`).
    RouteJoin {
        /// The (re-)joining node.
        node: NodeId,
        /// The overlay epoch the join is destined for.
        target_epoch: u64,
        /// Number of de Bruijn steps already taken.
        step: u32,
        /// The current trajectory point `x_step`.
        point: f64,
    },
    /// An in-flight token travelling to a uniformly random node
    /// (`A_SAMPLING` applied to a `TOKEN`, Listing 4).
    RouteToken {
        /// The mature node whose identifier the token carries.
        owner: NodeId,
        /// The offset `Δ ∈ [0, 2cλ]` used by the sampling delivery rule.
        delta: u32,
        /// The uniformly random target point.
        target: f64,
        /// Number of de Bruijn steps already taken.
        step: u32,
        /// The current trajectory point.
        point: f64,
    },
    /// A token handed directly to a node (either the sampling delivery, a
    /// forward to a connect-slot occupant, or the supply given to a newly
    /// joined node).
    Token {
        /// The mature node the token points to.
        owner: NodeId,
    },
    /// A fresh node announcing itself to a mature node picked from its tokens
    /// (the `CONNECT` message of Listing 4).
    Connect {
        /// The fresh node that wants to be known.
        node: NodeId,
    },
}

impl ProtocolMsg {
    /// A short tag used by metrics and tests.
    pub fn kind(&self) -> MsgKind {
        match self {
            ProtocolMsg::Create { .. } => MsgKind::Create,
            ProtocolMsg::AnnounceJoin { .. } => MsgKind::AnnounceJoin,
            ProtocolMsg::RouteJoin { .. } => MsgKind::RouteJoin,
            ProtocolMsg::RouteToken { .. } => MsgKind::RouteToken,
            ProtocolMsg::Token { .. } => MsgKind::Token,
            ProtocolMsg::Connect { .. } => MsgKind::Connect,
        }
    }

    /// The [`FaultAdapter`] wiring this message type into the engines'
    /// fault-injection machinery: kind tags for
    /// [`FaultRule::kinds`](tsa_event::FaultRule) matching, and a mutator
    /// that corrupts position and trajectory claims (but never identities,
    /// receivers or message kinds — the delivery facts the twin trace
    /// depends on).
    pub fn fault_adapter() -> FaultAdapter<ProtocolMsg> {
        FaultAdapter {
            kind_of: |m| m.kind().tag(),
            mutate: mutate_msg,
        }
    }
}

/// A uniform `[0,1)` value derived from the fault entropy word, salted per
/// field so one mutated message's fields decorrelate.
fn entropy_unit(entropy: u64, salt: u64) -> f64 {
    (tsa_sim::rng::mix(&[entropy, salt]) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Corrupts the payload *claims* of a message in place: positions,
/// trajectory points and sampling targets are replaced by entropy-derived
/// ring positions. Identity-only messages (`Token`, `Connect`) are left
/// untouched — mutating an identifier would invent a node, which is a
/// different adversary than a corrupted claim.
fn mutate_msg(msg: &mut ProtocolMsg, entropy: u64) -> bool {
    match msg {
        ProtocolMsg::Create { position, .. } | ProtocolMsg::AnnounceJoin { position, .. } => {
            *position = entropy_unit(entropy, 0);
            true
        }
        ProtocolMsg::RouteJoin { point, .. } => {
            *point = entropy_unit(entropy, 1);
            true
        }
        ProtocolMsg::RouteToken { target, point, .. } => {
            *target = entropy_unit(entropy, 2);
            *point = entropy_unit(entropy, 3);
            true
        }
        ProtocolMsg::Token { .. } | ProtocolMsg::Connect { .. } => false,
    }
}

/// The six message kinds of the protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MsgKind {
    /// Neighbour introduction.
    Create,
    /// Join announcement spread inside a neighbourhood.
    AnnounceJoin,
    /// In-flight join request.
    RouteJoin,
    /// In-flight sampling token.
    RouteToken,
    /// Directly delivered token.
    Token,
    /// Fresh-node connect request.
    Connect,
}

impl MsgKind {
    /// The stable numeric tag fault rules match against
    /// ([`FaultRule::kinds`](tsa_event::FaultRule)).
    pub fn tag(&self) -> u8 {
        match self {
            MsgKind::Create => 0,
            MsgKind::AnnounceJoin => 1,
            MsgKind::RouteJoin => 2,
            MsgKind::RouteToken => 3,
            MsgKind::Token => 4,
            MsgKind::Connect => 5,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_match_variants() {
        assert_eq!(
            ProtocolMsg::Create {
                node: NodeId(1),
                epoch: 2,
                position: 0.5
            }
            .kind(),
            MsgKind::Create
        );
        assert_eq!(
            ProtocolMsg::Token { owner: NodeId(1) }.kind(),
            MsgKind::Token
        );
        assert_eq!(
            ProtocolMsg::Connect { node: NodeId(1) }.kind(),
            MsgKind::Connect
        );
        assert_eq!(
            ProtocolMsg::RouteJoin {
                node: NodeId(1),
                target_epoch: 3,
                step: 0,
                point: 0.1
            }
            .kind(),
            MsgKind::RouteJoin
        );
        assert_eq!(
            ProtocolMsg::RouteToken {
                owner: NodeId(1),
                delta: 0,
                target: 0.2,
                step: 1,
                point: 0.3
            }
            .kind(),
            MsgKind::RouteToken
        );
        assert_eq!(
            ProtocolMsg::AnnounceJoin {
                node: NodeId(1),
                epoch: 1,
                position: 0.4
            }
            .kind(),
            MsgKind::AnnounceJoin
        );
    }

    #[test]
    fn messages_are_small() {
        // The model allows O(polylog n) bits per message; our envelope is a
        // handful of machine words.
        assert!(std::mem::size_of::<ProtocolMsg>() <= 48);
    }
}
