//! Parameters of the maintenance protocol (`A_LDS` + `A_RANDOM`).

use serde::{Deserialize, Serialize};
use tsa_overlay::OverlayParams;

use crate::byzantine::ByzantineSpec;

/// All tunables of the Section 5 maintenance protocol.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MaintenanceParams {
    /// The underlying overlay parameters (`n`, `κ`, `c`).
    pub overlay: OverlayParams,
    /// `δ ∈ O(log n)`: how many mature nodes each fresh node connects to per
    /// round, and half the number of connect slots a mature node offers.
    pub delta: usize,
    /// `τ ∈ O(log n)`: how many tokens each mature node emits per round via
    /// `A_SAMPLING`.
    pub tau: usize,
    /// The routing replication factor `r ∈ Θ(1)` (Listing 1).
    pub replication: usize,
    /// Number of initial epochs during which genesis nodes may derive their
    /// neighbourhood directly from the (churn-free) initial member set instead
    /// of waiting for `CREATE` introductions. This realizes the bootstrap
    /// construction the paper delegates to Gmyr et al. \\[14\\]; it equals
    /// `λ + 1`, the depth of the join-request pipeline.
    pub genesis_epochs: u64,
    /// When `Some`, the id slice the spec selects runs its misbehavior
    /// instead of the honest protocol. `None` (the default, and the only
    /// value existing serialized parameter sets can contain) leaves every
    /// node honest.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub byzantine: Option<ByzantineSpec>,
}

impl MaintenanceParams {
    /// Sensible defaults for a network with lower bound `n`.
    pub fn new(n: usize) -> Self {
        Self::with_overlay(OverlayParams::new(n, 1.5))
    }

    /// Builds maintenance parameters on top of explicit overlay parameters.
    pub fn with_overlay(overlay: OverlayParams) -> Self {
        let lambda = overlay.lambda() as usize;
        MaintenanceParams {
            overlay,
            delta: lambda.max(2),
            tau: (2 * lambda).max(4),
            replication: 3,
            genesis_epochs: overlay.lambda() as u64 + 1,
            byzantine: None,
        }
    }

    /// Assigns a byzantine role to the id slice `spec` selects.
    pub fn with_byzantine(mut self, spec: ByzantineSpec) -> Self {
        self.byzantine = Some(spec);
        self
    }

    /// Overrides the robustness parameter `c` (and keeps everything else
    /// derived from it consistent).
    pub fn with_c(mut self, c: f64) -> Self {
        self.overlay.c = c;
        self
    }

    /// Overrides `δ`.
    pub fn with_delta(mut self, delta: usize) -> Self {
        self.delta = delta.max(1);
        self
    }

    /// Overrides `τ`.
    pub fn with_tau(mut self, tau: usize) -> Self {
        self.tau = tau;
        self
    }

    /// Overrides the replication factor `r`.
    pub fn with_replication(mut self, r: usize) -> Self {
        self.replication = r.max(1);
        self
    }

    /// `λ`, the number of address bits.
    pub fn lambda(&self) -> u32 {
        self.overlay.lambda()
    }

    /// The age (in rounds) after which a node counts as mature
    /// (`λ' = 2λ + 4`).
    pub fn maturity_age(&self) -> u64 {
        self.overlay.maturity_age()
    }

    /// Number of connect slots a mature node offers (`2δ`).
    pub fn connect_slots(&self) -> usize {
        2 * self.delta
    }

    /// Length of the churn-free bootstrap phase in rounds (`2λ + 7` in the
    /// paper; we need `2(λ + 1)` for the pipeline to fill and keep the paper's
    /// small safety margin).
    pub fn bootstrap_rounds(&self) -> u64 {
        2 * self.lambda() as u64 + 7
    }

    /// The swarm radius used by the protocol.
    pub fn swarm_radius(&self) -> f64 {
        self.overlay.swarm_radius()
    }

    /// The paper's churn rules for this parameter set: `(n/16, 4λ+14)` with the
    /// join-via-2-rounds-old restriction.
    pub fn paper_churn_rules(&self) -> tsa_sim::ChurnRules {
        tsa_sim::ChurnRules::paper(
            self.overlay.n,
            self.overlay.churn_window(),
            self.bootstrap_rounds(),
        )
    }

    /// The paper's `(2, 2λ+7)` adversary lateness for this parameter set.
    pub fn paper_lateness(&self) -> tsa_sim::Lateness {
        tsa_sim::Lateness {
            topology: 2,
            state: self.overlay.state_lateness(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_scale_with_n() {
        let small = MaintenanceParams::new(64);
        let large = MaintenanceParams::new(1024);
        assert!(large.delta > small.delta);
        assert!(large.tau > small.tau);
        assert_eq!(small.connect_slots(), 2 * small.delta);
        assert_eq!(small.genesis_epochs, small.lambda() as u64 + 1);
    }

    #[test]
    fn builders_override_fields() {
        let p = MaintenanceParams::new(128)
            .with_c(2.5)
            .with_delta(5)
            .with_tau(9)
            .with_replication(6);
        assert_eq!(p.overlay.c, 2.5);
        assert_eq!(p.delta, 5);
        assert_eq!(p.tau, 9);
        assert_eq!(p.replication, 6);
    }

    #[test]
    fn paper_rules_are_consistent_with_overlay() {
        let p = MaintenanceParams::new(256);
        let rules = p.paper_churn_rules();
        assert_eq!(rules.max_events, Some(16));
        assert_eq!(rules.window, p.overlay.churn_window());
        assert_eq!(rules.min_bootstrap_age, 2);
        assert_eq!(p.paper_lateness().topology, 2);
        assert!(p.bootstrap_rounds() >= 2 * p.lambda() as u64 + 2);
    }
}
