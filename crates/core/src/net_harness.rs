//! The maintenance protocol on the loopback transport.
//!
//! [`NetMaintenanceHarness`] is the third sibling of
//! [`MaintenanceHarness`](crate::MaintenanceHarness) and
//! [`AsyncMaintenanceHarness`](crate::AsyncMaintenanceHarness): the same
//! [`ProtocolNode`] state machine, genesis configuration, churn arbiter and
//! health reporting — but the messages are real length-prefixed frames over
//! loopback TCP, scheduled by the wall clock instead of a virtual one. The
//! harness records every message's fate; replaying the recorded
//! [`MessageTrace`] through
//! [`AsyncMaintenanceHarness::assemble_replay`](crate::AsyncMaintenanceHarness::assemble_replay)
//! re-executes the run deterministically, which is how the twin tests pin
//! the transport to the model.

use std::collections::HashMap;
use std::time::Duration;

use tsa_event::{FaultPlan, FaultStats, MessageTrace, NetStats};
use tsa_net::{NetConfig, NetRunner, WireStats};
use tsa_obs::ObsHandle;
use tsa_sim::{
    Adversary, ChurnRules, Lateness, MetricsHistory, MetricsMode, MetricsSummary, NodeId, Round,
    RoundMetrics,
};

use crate::harness::{build_report, harness_factory, harness_sim_config};
use crate::node::ProtocolNode;
use crate::params::MaintenanceParams;
use crate::snapshot::NodeSnapshot;
use crate::MaintenanceReport;

/// The maintenance protocol running over loopback TCP against an adversary.
pub struct NetMaintenanceHarness<A: Adversary> {
    net: NetRunner<ProtocolNode, A>,
    params: MaintenanceParams,
    /// The harness's own grip on the observability sink (the runner holds a
    /// clone): the protocol-level probes — sampling ages — live here, above
    /// the transport.
    obs: ObsHandle,
}

impl<A: Adversary> NetMaintenanceHarness<A> {
    /// Wires the protocol, an adversary and the loopback transport together
    /// — the transport counterpart of
    /// [`MaintenanceHarness::assemble`](crate::MaintenanceHarness::assemble),
    /// sharing its genesis configuration bit for bit. `round_duration` is
    /// the wall-clock length of one protocol round; on loopback a few
    /// milliseconds comfortably deliver each round's sends by the next
    /// boundary.
    pub fn assemble(
        params: MaintenanceParams,
        adversary: A,
        seed: u64,
        churn_rules: ChurnRules,
        lateness: Lateness,
        round_duration: Duration,
    ) -> Self {
        let config = NetConfig::new(harness_sim_config(seed, churn_rules, lateness))
            .with_round_duration(round_duration);
        let mut net = NetRunner::new(config, adversary, harness_factory(params));
        net.seed_nodes(params.overlay.n);
        NetMaintenanceHarness {
            net,
            params,
            obs: ObsHandle::off(),
        }
    }

    /// Attaches an observability sink to the runner and the harness-level
    /// probes (pass [`ObsHandle::off`] to detach).
    pub fn set_obs(&mut self, obs: ObsHandle) {
        self.net.set_obs(obs.clone());
        self.obs = obs;
    }

    /// Selects how the runner retains per-round metrics. Call before
    /// running.
    pub fn set_metrics_mode(&mut self, mode: MetricsMode) {
        self.net.set_metrics_mode(mode);
    }

    /// The whole-run metrics digest, identical under both metrics modes.
    pub fn metrics_summary(&self) -> MetricsSummary {
        self.net.metrics_summary()
    }

    /// The most recent round's metrics, under either metrics mode.
    pub fn last_metrics(&self) -> Option<&RoundMetrics> {
        self.net.last_metrics()
    }

    /// Installs a fault-injection plan (wired to the protocol's message
    /// adapter). Call before the first round. The same plan installed on an
    /// [`AsyncMaintenanceHarness`](crate::AsyncMaintenanceHarness) takes
    /// byte-identical decisions, because both engines assign the same
    /// sequence numbers.
    pub fn set_faults(&mut self, plan: FaultPlan) {
        self.net
            .set_faults(plan, crate::messages::ProtocolMsg::fault_adapter());
    }

    /// Whole-run counters of injected faults.
    pub fn fault_stats(&self) -> FaultStats {
        self.net.fault_stats()
    }

    /// The protocol parameters.
    pub fn params(&self) -> &MaintenanceParams {
        &self.params
    }

    /// The current round.
    pub fn round(&self) -> Round {
        self.net.round()
    }

    /// The current overlay epoch.
    pub fn epoch(&self) -> u64 {
        self.net.round() / 2
    }

    /// Number of nodes currently in the network.
    pub fn node_count(&self) -> usize {
        self.net.node_count()
    }

    /// Runs `rounds` wall-clock rounds.
    pub fn run(&mut self, rounds: u64) {
        if self.obs.is_on() {
            // The runner's own `run` bypasses the harness-level probes.
            for _ in 0..rounds {
                self.step();
            }
        } else {
            self.net.run(rounds);
        }
    }

    /// Runs the full churn-free bootstrap phase.
    pub fn run_bootstrap(&mut self) {
        self.run(self.params.bootstrap_rounds());
    }

    /// Executes a single round.
    pub fn step(&mut self) {
        self.net.step();
        if self.obs.is_on() {
            self.probe_repair_sample_ages();
        }
    }

    /// Records the age — in maturity ages — of every sample surfaced by
    /// neighbour repair this round. The loopback transport has no region
    /// structure, so everything lands in region 0.
    fn probe_repair_sample_ages(&self) {
        let t = self.net.round().saturating_sub(1);
        let maturity = self.params.maturity_age().max(1);
        for (_, node) in self.net.nodes() {
            for &owner in node.repair_samples() {
                if let Some(joined) = self.net.joined_at(owner) {
                    let age = t.saturating_sub(joined) / maturity;
                    self.obs.observe_region("proto.repair_sample_age", 0, age);
                }
            }
        }
    }

    /// Direct access to the underlying transport runtime.
    pub fn runner(&self) -> &NetRunner<ProtocolNode, A> {
        &self.net
    }

    /// The per-round message metrics (congestion, Lemma 24).
    pub fn metrics(&self) -> &MetricsHistory {
        self.net.metrics()
    }

    /// Network-effect counters, comparable with the event engine's.
    pub fn net_stats(&self) -> NetStats {
        self.net.net_stats()
    }

    /// Actual wire traffic counters (frames and bytes on the loopback).
    pub fn wire_stats(&self) -> WireStats {
        self.net.wire_stats()
    }

    /// The per-message fate trace recorded so far — feed it to
    /// [`AsyncMaintenanceHarness::assemble_replay`](crate::AsyncMaintenanceHarness::assemble_replay)
    /// to re-execute this run deterministically.
    pub fn trace(&self) -> MessageTrace {
        self.net.trace()
    }

    /// Snapshots of every node's observable state.
    pub fn snapshots(&self) -> Vec<(NodeId, NodeSnapshot)> {
        let now = self.net.round().saturating_sub(1);
        self.net
            .nodes()
            .map(|(id, node)| (id, node.snapshot(now)))
            .collect()
    }

    /// The health report for the most recently completed round — the same
    /// routability criterion as the other two harnesses, computed by the
    /// shared report builder.
    pub fn report(&self) -> MaintenanceReport {
        let round = self.net.round().saturating_sub(1);
        let snapshots = self.snapshots();
        build_report(
            &self.params,
            self.net.config().sim.hash_seed,
            round,
            &snapshots,
            self.net
                .last_metrics()
                .map(|m| m.max_received_per_node)
                .unwrap_or(0),
        )
    }

    /// Per-node connect counts of the last round, keyed by node.
    pub fn connect_load(&self) -> HashMap<NodeId, usize> {
        self.snapshots()
            .into_iter()
            .map(|(id, s)| (id, s.stats.connects_received_last_round))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsa_sim::NullAdversary;

    #[test]
    fn the_overlay_survives_a_real_transport() {
        // A small overlay, bootstrap plus a few maintained rounds, entirely
        // over loopback sockets: the protocol must come out routable, and
        // real frames must have moved.
        let params = MaintenanceParams::new(16)
            .with_c(1.5)
            .with_tau(4)
            .with_replication(2);
        let mut h = NetMaintenanceHarness::assemble(
            params,
            NullAdversary,
            17,
            params.paper_churn_rules(),
            params.paper_lateness(),
            Duration::from_millis(15),
        );
        h.run_bootstrap();
        h.run(4);
        let report = h.report();
        assert_eq!(report.node_count, 16);
        assert!(
            report.is_routable(),
            "the loopback transport must sustain the overlay: {report:?}"
        );
        let wire = h.wire_stats();
        assert!(wire.frames_sent > 0 && wire.frames_received > 0);
        assert_eq!(h.trace().len() as u64, h.net_stats().sent);
    }
}
