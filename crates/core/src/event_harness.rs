//! The maintenance protocol under the virtual-time event engine.
//!
//! [`AsyncMaintenanceHarness`] is the asynchronous sibling of
//! [`MaintenanceHarness`](crate::MaintenanceHarness): the *same*
//! [`ProtocolNode`] state machine, the same genesis configuration, the same
//! churn arbiter and health reporting — but scheduled by `tsa-event`'s
//! discrete-event engine, where every message individually samples a latency
//! (plus jitter) and may be lost. An event run whose delays never exceed one
//! round is bit-identical to the round harness at the same seed; everything
//! beyond that measures how much asynchrony the two-steps-ahead maintenance
//! actually tolerates.

use std::collections::HashMap;

use tsa_event::{
    EventConfig, EventSimulator, FaultPlan, FaultStats, LatencyModel, MessageTrace, NetModel,
    NetStats, Topology,
};
use tsa_obs::ObsHandle;
use tsa_sim::{
    Adversary, ChurnRules, Lateness, MetricsHistory, MetricsMode, MetricsSummary, NodeId, Round,
    RoundMetrics,
};

use crate::harness::{build_report, harness_factory, harness_sim_config};
use crate::node::ProtocolNode;
use crate::params::MaintenanceParams;
use crate::snapshot::NodeSnapshot;
use crate::MaintenanceReport;
use tsa_overlay::Position;

/// The maintenance protocol running inside the event engine against an
/// adversary and a network model.
pub struct AsyncMaintenanceHarness<A: Adversary> {
    sim: EventSimulator<ProtocolNode, A>,
    params: MaintenanceParams,
    /// The harness's own grip on the observability sink (the engine holds a
    /// clone): the protocol-level probes — sampling ages — live here, above
    /// the engine.
    obs: ObsHandle,
}

impl<A: Adversary> AsyncMaintenanceHarness<A> {
    /// Wires the protocol, an adversary, the event engine and a network
    /// model together from fully explicit parts — the async counterpart of
    /// [`MaintenanceHarness::assemble`](crate::MaintenanceHarness::assemble),
    /// sharing its genesis configuration bit for bit.
    pub fn assemble(
        params: MaintenanceParams,
        adversary: A,
        seed: u64,
        churn_rules: ChurnRules,
        lateness: Lateness,
        net: NetModel,
    ) -> Self {
        Self::assemble_with_topology(
            params,
            adversary,
            seed,
            churn_rules,
            lateness,
            Topology::Global(net),
        )
    }

    /// [`AsyncMaintenanceHarness::assemble`] over an explicit link
    /// [`Topology`] instead of a link-uniform model — regional partitions,
    /// scheduled bridges, per-link overrides. A [`Topology::Global`]
    /// topology is `assemble` bit for bit.
    pub fn assemble_with_topology(
        params: MaintenanceParams,
        adversary: A,
        seed: u64,
        churn_rules: ChurnRules,
        lateness: Lateness,
        topology: Topology,
    ) -> Self {
        let config =
            EventConfig::with_topology(harness_sim_config(seed, churn_rules, lateness), topology);
        let mut sim = EventSimulator::new(config, adversary, harness_factory(params));
        sim.seed_nodes(params.overlay.n);
        AsyncMaintenanceHarness {
            sim,
            params,
            obs: ObsHandle::off(),
        }
    }

    /// Attaches an observability sink to the engine and the harness-level
    /// probes (pass [`ObsHandle::off`] to detach).
    pub fn set_obs(&mut self, obs: ObsHandle) {
        self.sim.set_obs(obs.clone());
        self.obs = obs;
    }

    /// Selects how the engine retains per-round metrics. Call before
    /// running.
    pub fn set_metrics_mode(&mut self, mode: MetricsMode) {
        self.sim.set_metrics_mode(mode);
    }

    /// The whole-run metrics digest, identical under both metrics modes.
    pub fn metrics_summary(&self) -> MetricsSummary {
        self.sim.metrics_summary()
    }

    /// The most recent round's metrics, under either metrics mode.
    pub fn last_metrics(&self) -> Option<&RoundMetrics> {
        self.sim.last_metrics()
    }

    /// Assembles the deterministic twin of a recorded transport run: the
    /// same genesis as [`assemble`](AsyncMaintenanceHarness::assemble), but
    /// every message's fate — lost, or delivered at which round boundary —
    /// comes verbatim from `trace` instead of a sampled network model. Used
    /// to replay a `tsa-net` loopback run inside the event engine and prove
    /// the two executions coincide.
    pub fn assemble_replay(
        params: MaintenanceParams,
        adversary: A,
        seed: u64,
        churn_rules: ChurnRules,
        lateness: Lateness,
        trace: MessageTrace,
    ) -> Self {
        // The model itself is never consulted under replay; zero latency is
        // just the canonical placeholder.
        let mut harness = Self::assemble(
            params,
            adversary,
            seed,
            churn_rules,
            lateness,
            NetModel::new(LatencyModel::constant(0)),
        );
        harness.sim.set_replay(trace);
        harness
    }

    /// Installs a fault-injection plan (wired to the protocol's message
    /// adapter). Call before the first round. Composes with
    /// [`assemble_replay`](AsyncMaintenanceHarness::assemble_replay): under
    /// replay, drop/delay fates come from the trace while mutations and
    /// duplicates are re-applied, keeping the twin byte-aligned.
    pub fn set_faults(&mut self, plan: FaultPlan) {
        self.sim
            .set_faults(plan, crate::messages::ProtocolMsg::fault_adapter());
    }

    /// Whole-run counters of injected faults.
    pub fn fault_stats(&self) -> FaultStats {
        self.sim.fault_stats()
    }

    /// The protocol parameters.
    pub fn params(&self) -> &MaintenanceParams {
        &self.params
    }

    /// The current round (boundary of the virtual clock).
    pub fn round(&self) -> Round {
        self.sim.round()
    }

    /// The current overlay epoch.
    pub fn epoch(&self) -> u64 {
        self.sim.round() / 2
    }

    /// Number of nodes currently in the network.
    pub fn node_count(&self) -> usize {
        self.sim.node_count()
    }

    /// Runs `rounds` round boundaries.
    pub fn run(&mut self, rounds: u64) {
        if self.obs.is_on() {
            // The engine's own `run` bypasses the harness-level probes.
            for _ in 0..rounds {
                self.step();
            }
        } else {
            self.sim.run(rounds);
        }
    }

    /// Runs the full churn-free bootstrap phase.
    pub fn run_bootstrap(&mut self) {
        self.run(self.params.bootstrap_rounds());
    }

    /// Executes a single round boundary.
    pub fn step(&mut self) {
        self.sim.step();
        if self.obs.is_on() {
            self.probe_repair_sample_ages();
        }
    }

    /// Records the age — in maturity ages — of every sample surfaced by
    /// neighbour repair this round, keyed by the sampled node's region under
    /// the configured topology (region 0 for non-regional topologies, which
    /// keeps a [`Topology::Global`] run bit-identical to the round harness's
    /// probe).
    fn probe_repair_sample_ages(&self) {
        let t = self.sim.round().saturating_sub(1);
        let maturity = self.params.maturity_age().max(1);
        let topology = &self.sim.config().topology;
        for (_, node) in self.sim.nodes() {
            for &owner in node.repair_samples() {
                if let Some(joined) = self.sim.joined_at(owner) {
                    let age = t.saturating_sub(joined) / maturity;
                    let region = topology.region_of(owner).unwrap_or(0);
                    self.obs
                        .observe_region("proto.repair_sample_age", region, age);
                }
            }
        }
    }

    /// Direct access to the underlying event simulator.
    pub fn simulator(&self) -> &EventSimulator<ProtocolNode, A> {
        &self.sim
    }

    /// The per-round message metrics (congestion, Lemma 24).
    pub fn metrics(&self) -> &MetricsHistory {
        self.sim.metrics()
    }

    /// Whole-run counters of the network model's effects (loss, delays).
    pub fn net_stats(&self) -> NetStats {
        self.sim.net_stats()
    }

    /// Distinct directed communication edges of the last round that crossed
    /// a region boundary of the configured topology (0 for non-regional
    /// topologies).
    pub fn cross_region_edges(&self) -> usize {
        self.sim.cross_region_edges()
    }

    /// Snapshots of every node's observable state.
    pub fn snapshots(&self) -> Vec<(NodeId, NodeSnapshot)> {
        let now = self.sim.round().saturating_sub(1);
        self.sim
            .nodes()
            .map(|(id, node)| (id, node.snapshot(now)))
            .collect()
    }

    /// The health report for the most recently completed round — the same
    /// routability criterion as the round harness, computed by the shared
    /// report builder.
    pub fn report(&self) -> MaintenanceReport {
        let round = self.sim.round().saturating_sub(1);
        let snapshots = self.snapshots();
        build_report(
            &self.params,
            self.sim.config().sim.hash_seed,
            round,
            &snapshots,
            self.sim
                .last_metrics()
                .map(|m| m.max_received_per_node)
                .unwrap_or(0),
        )
    }

    /// Per-node connect counts of the last round, keyed by node — the
    /// quantity bounded by Lemma 22.
    pub fn connect_load(&self) -> HashMap<NodeId, usize> {
        self.snapshots()
            .into_iter()
            .map(|(id, s)| (id, s.stats.connects_received_last_round))
            .collect()
    }

    /// The current positions (ideal overlay) of all participating mature
    /// nodes, for analyses that need them.
    pub fn ideal_positions(&self) -> Vec<(NodeId, Position)> {
        let epoch = self.epoch();
        let hash_seed = self.sim.config().sim.hash_seed;
        self.snapshots()
            .into_iter()
            .filter(|(_, s)| s.mature && s.participating)
            .map(|(id, _)| {
                (
                    id,
                    Position::new(tsa_sim::rng::position_hash(hash_seed, id, epoch)),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsa_event::LatencyModel;
    use tsa_sim::NullAdversary;

    fn small_params() -> MaintenanceParams {
        MaintenanceParams::new(48)
            .with_c(1.5)
            .with_tau(4)
            .with_replication(2)
    }

    #[test]
    fn zero_latency_async_report_matches_the_round_harness() {
        let params = small_params();
        let assemble_round = || {
            crate::MaintenanceHarness::assemble(
                params,
                NullAdversary,
                17,
                params.paper_churn_rules(),
                params.paper_lateness(),
            )
        };
        let mut sync = assemble_round();
        sync.run_bootstrap();
        sync.run(6);

        let mut asynch = AsyncMaintenanceHarness::assemble(
            params,
            NullAdversary,
            17,
            params.paper_churn_rules(),
            params.paper_lateness(),
            NetModel::new(LatencyModel::constant(0)),
        );
        asynch.run_bootstrap();
        asynch.run(6);

        assert_eq!(
            serde_json::to_string(&sync.report()).unwrap(),
            serde_json::to_string(&asynch.report()).unwrap(),
            "a zero-delay event run is the round model"
        );
        assert_eq!(sync.metrics().summary(), asynch.metrics().summary());
    }

    #[test]
    fn bounded_asynchrony_keeps_the_overlay_routable() {
        // Uniform delays up to a round and a half: messages straddle at
        // most one extra boundary. The maintenance protocol holds two steps
        // ahead, so the overlay must stay routable.
        let params = small_params();
        let mut h = AsyncMaintenanceHarness::assemble(
            params,
            NullAdversary,
            3,
            params.paper_churn_rules(),
            params.paper_lateness(),
            NetModel::new(LatencyModel::uniform(0, 1500)),
        );
        h.run_bootstrap();
        h.run(8);
        let report = h.report();
        assert_eq!(report.node_count, 48);
        assert!(
            report.is_routable(),
            "sub-round asynchrony must not break the overlay: {report:?}"
        );
    }
}
