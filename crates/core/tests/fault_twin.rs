//! The fault-injection half of the differential twin contract, plus the
//! zero-fault anchors.
//!
//! `net_twin.rs` pins the fault-free twin: a recorded loopback-TCP run
//! replays bit-for-bit through the event engine. This file extends the same
//! inductive argument to *injected* faults and byzantine nodes: fault
//! decisions are pure functions of `(seed, seq)` and byzantine role
//! assignment is a pure function of the node id, so a transport run under a
//! non-empty [`FaultPlan`] and a byzantine population, trace-replayed under
//! the *same* plan and parameters, must land on identical protocol state —
//! report, membership, every node snapshot, and the fault counters
//! themselves.
//!
//! The anchors pin the other direction: byzantine fraction 0 and the empty
//! plan must be byte-identical to runs that never heard of the fault layer,
//! on all three engines — otherwise merely *wiring in* the feature would
//! silently shift every committed baseline.

use std::time::Duration;

use tsa_core::{
    AsyncMaintenanceHarness, ByzantineSpec, MaintenanceHarness, MaintenanceParams, MisbehaviorKind,
    NetMaintenanceHarness,
};
use tsa_event::{FaultAction, FaultPlan, FaultRule, LatencyModel, NetModel, RoundWindow};
use tsa_sim::NullAdversary;

fn small_params(n: usize) -> MaintenanceParams {
    MaintenanceParams::new(n)
        .with_c(1.5)
        .with_tau(4)
        .with_replication(2)
}

/// A mixed plan exercising all four actions, so each twin pin covers drop,
/// delay, duplicate and mutate in one trace.
fn mixed_plan() -> FaultPlan {
    FaultPlan::new()
        .with_rule(
            FaultRule::every(FaultAction::Drop)
                .with_prob(0.04)
                .in_window(RoundWindow::starting_at(2)),
        )
        .with_rule(FaultRule::every(FaultAction::Delay { ticks: 1500 }).with_prob(0.05))
        .with_rule(FaultRule::every(FaultAction::Duplicate).with_prob(0.05))
        .with_rule(FaultRule::every(FaultAction::Mutate).with_prob(0.05))
}

/// Report + snapshots, serialized: the byte-identity fingerprint every
/// assertion in this file compares.
fn fingerprint(report: &impl serde::Serialize, snapshots: &impl serde::Serialize) -> String {
    format!(
        "{}|{}",
        serde_json::to_string(report).unwrap(),
        serde_json::to_string(snapshots).unwrap(),
    )
}

/// Runs the transport under `plan` + byzantine `spec`, replays its trace in
/// the event engine under the same plan, and demands identical protocol
/// state and fault counters.
fn assert_faulted_twin(kind: MisbehaviorKind, seed: u64) {
    let params = small_params(16).with_byzantine(ByzantineSpec::fraction(1, 8, kind));
    let rounds = params.bootstrap_rounds() + 4;
    let plan = mixed_plan();

    let mut real = NetMaintenanceHarness::assemble(
        params,
        NullAdversary,
        seed,
        params.paper_churn_rules(),
        params.paper_lateness(),
        Duration::from_millis(15),
    );
    real.set_faults(plan.clone());
    real.run(rounds);
    let label = kind.label();
    assert!(
        real.fault_stats().total() > 0,
        "{label}/{seed}: the plan must actually inject faults"
    );
    let trace = real.trace();
    assert_eq!(
        trace.len() as u64,
        real.net_stats().sent,
        "{label}/{seed}: one fate per sent message, duplicates included"
    );

    let mut twin = AsyncMaintenanceHarness::assemble_replay(
        params,
        NullAdversary,
        seed,
        params.paper_churn_rules(),
        params.paper_lateness(),
        trace,
    );
    twin.set_faults(plan);
    twin.run(rounds);

    assert_eq!(
        real.runner().member_ids(),
        twin.simulator().member_ids(),
        "{label}/{seed}: membership diverged"
    );
    assert_eq!(
        fingerprint(&real.report(), &real.snapshots()),
        fingerprint(&twin.report(), &twin.snapshots()),
        "{label}/{seed}: protocol state diverged"
    );
    assert_eq!(
        real.fault_stats(),
        twin.fault_stats(),
        "{label}/{seed}: the engines took different fault decisions"
    );
}

#[test]
fn stale_claim_runs_twin_exactly_under_faults() {
    for seed in [11, 37] {
        assert_faulted_twin(MisbehaviorKind::StaleClaims, seed);
    }
}

#[test]
fn selective_forward_runs_twin_exactly_under_faults() {
    for seed in [17, 41] {
        assert_faulted_twin(MisbehaviorKind::SelectiveForward, seed);
    }
}

#[test]
fn bogus_reply_runs_twin_exactly_under_faults() {
    for seed in [29, 43] {
        assert_faulted_twin(MisbehaviorKind::BogusReplies, seed);
    }
}

#[test]
fn forged_position_runs_twin_exactly_under_faults() {
    assert_faulted_twin(MisbehaviorKind::ForgedPosition, 23);
}

// ---------------------------------------------------------------------------
// Zero-fault anchors: fraction 0 and the empty plan are invisible.
// ---------------------------------------------------------------------------

#[test]
fn fraction_zero_is_invisible_on_the_round_engine() {
    let params = small_params(24);
    let seed = 7;
    let rounds = 6;
    let run = |params: MaintenanceParams| {
        let mut h = MaintenanceHarness::assemble(
            params,
            NullAdversary,
            seed,
            params.paper_churn_rules(),
            params.paper_lateness(),
        );
        h.run_bootstrap();
        h.run(rounds);
        fingerprint(&h.report(), &h.snapshots())
    };
    let honest = run(params);
    for kind in MisbehaviorKind::ALL {
        assert_eq!(
            run(params.with_byzantine(ByzantineSpec::fraction(0, 8, kind))),
            honest,
            "a 0/8 {} population must be byte-invisible",
            kind.label()
        );
    }
}

#[test]
fn the_empty_plan_and_fraction_zero_are_invisible_on_the_event_engine() {
    let seed = 9;
    let rounds = 6;
    let net = NetModel {
        latency: LatencyModel::uniform(100, 1800),
        jitter: 200,
        loss: 0.02,
    };
    let run = |params: MaintenanceParams, plan: Option<FaultPlan>| {
        let mut h = AsyncMaintenanceHarness::assemble(
            params,
            NullAdversary,
            seed,
            params.paper_churn_rules(),
            params.paper_lateness(),
            net,
        );
        if let Some(plan) = plan {
            h.set_faults(plan);
        }
        h.run_bootstrap();
        h.run(rounds);
        let total = h.fault_stats().total();
        (fingerprint(&h.report(), &h.snapshots()), total)
    };
    let params = small_params(24);
    let (honest, _) = run(params, None);
    let (empty_plan, injected) = run(params, Some(FaultPlan::default()));
    assert_eq!(empty_plan, honest, "the empty plan must be byte-invisible");
    assert_eq!(injected, 0, "and must inject nothing");
    let (zero_fraction, _) = run(
        params.with_byzantine(ByzantineSpec::fraction(
            0,
            8,
            MisbehaviorKind::ForgedPosition,
        )),
        None,
    );
    assert_eq!(
        zero_fraction, honest,
        "a zero byzantine fraction must be byte-invisible"
    );
}

#[test]
fn the_empty_plan_and_fraction_zero_are_invisible_on_the_transport_replay() {
    // Wall-clock transport runs are not repeatable, so the transport anchor
    // pins the deterministic half: one honest recorded trace, replayed under
    // plain parameters, under fraction 0, and under the empty plan, must
    // land on identical protocol state each time.
    let params = small_params(16);
    let seed = 13;
    let rounds = params.bootstrap_rounds() + 4;
    let mut real = NetMaintenanceHarness::assemble(
        params,
        NullAdversary,
        seed,
        params.paper_churn_rules(),
        params.paper_lateness(),
        Duration::from_millis(15),
    );
    real.run(rounds);
    let trace = real.trace();

    let replay = |params: MaintenanceParams, plan: Option<FaultPlan>| {
        let mut twin = AsyncMaintenanceHarness::assemble_replay(
            params,
            NullAdversary,
            seed,
            params.paper_churn_rules(),
            params.paper_lateness(),
            trace.clone(),
        );
        if let Some(plan) = plan {
            twin.set_faults(plan);
        }
        twin.run(rounds);
        fingerprint(&twin.report(), &twin.snapshots())
    };
    let plain = replay(params, None);
    assert_eq!(
        plain,
        fingerprint(&real.report(), &real.snapshots()),
        "the plain replay reproduces the transport"
    );
    assert_eq!(
        replay(params, Some(FaultPlan::default())),
        plain,
        "the empty plan must be byte-invisible in replay"
    );
    assert_eq!(
        replay(
            params.with_byzantine(ByzantineSpec::fraction(0, 8, MisbehaviorKind::StaleClaims)),
            None,
        ),
        plain,
        "a zero byzantine fraction must be byte-invisible in replay"
    );
}
