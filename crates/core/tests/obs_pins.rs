//! Pins for the observability layer's two load-bearing claims.
//!
//! * **Off is really off.** Attaching a [`NullRecorder`] switches the
//!   harness onto its instrumented path (per-step probes instead of the
//!   engine's own `run` loop), so this pins that the path itself is inert:
//!   the report and metrics digest are byte-identical to an uninstrumented
//!   run across seeds and adversaries. Every committed `BENCH_*.json`
//!   rests on this.
//! * **Deterministic means deterministic.** An [`ObsRecorder`]'s counters
//!   and histograms are pure functions of `(seed, protocol)`: byte-identical
//!   across rayon thread caps, and — for the scheduler-independent `proto.*`
//!   family — byte-identical between the round engine and a
//!   sub-round-latency event run. CI's byte-comparison of
//!   `BENCH_exp_profile.json`'s deterministic section rests on this.

use std::sync::Arc;

use proptest::{prop_assert_eq, proptest, ProptestConfig};
use tsa_adversary::{RandomChurnAdversary, TargetedSwarmAdversary};
use tsa_core::{AsyncMaintenanceHarness, MaintenanceHarness, MaintenanceParams};
use tsa_event::{LatencyModel, NetModel};
use tsa_obs::{NullRecorder, ObsHandle, ObsRecorder};
use tsa_sim::{Adversary, NullAdversary};

fn small_params() -> MaintenanceParams {
    MaintenanceParams::new(32)
        .with_c(1.5)
        .with_tau(3)
        .with_replication(2)
}

/// (report, metrics digest) of a round-engine run, optionally instrumented.
fn round_fingerprint<A: Adversary>(
    seed: u64,
    rounds: u64,
    adversary: A,
    obs: Option<ObsHandle>,
) -> (String, String) {
    let params = small_params();
    let mut h = MaintenanceHarness::assemble(
        params,
        adversary,
        seed,
        params.paper_churn_rules(),
        params.paper_lateness(),
    );
    if let Some(obs) = obs {
        h.set_obs(obs);
    }
    h.run_bootstrap();
    h.run(rounds);
    (
        serde_json::to_string(&h.report()).unwrap(),
        serde_json::to_string(&h.metrics_summary()).unwrap(),
    )
}

/// Like [`round_fingerprint`], on the event engine under `latency` ticks.
fn event_fingerprint<A: Adversary>(
    seed: u64,
    rounds: u64,
    latency: u64,
    adversary: A,
    obs: Option<ObsHandle>,
) -> (String, String) {
    let params = small_params();
    let mut h = AsyncMaintenanceHarness::assemble(
        params,
        adversary,
        seed,
        params.paper_churn_rules(),
        params.paper_lateness(),
        NetModel::new(LatencyModel::constant(latency)),
    );
    if let Some(obs) = obs {
        h.set_obs(obs);
    }
    h.run_bootstrap();
    h.run(rounds);
    (
        serde_json::to_string(&h.report()).unwrap(),
        serde_json::to_string(&h.metrics_summary()).unwrap(),
    )
}

/// The round engine's deterministic snapshot under a rayon thread cap.
fn round_snapshot(seed: u64, rounds: u64, cap: usize) -> String {
    rayon::with_thread_cap(cap, || {
        let params = small_params();
        let mut h = MaintenanceHarness::assemble(
            params,
            RandomChurnAdversary::new(2, seed),
            seed,
            params.paper_churn_rules(),
            params.paper_lateness(),
        );
        let rec = Arc::new(ObsRecorder::new());
        h.set_obs(ObsHandle::new(rec.clone()));
        h.run_bootstrap();
        h.run(rounds);
        serde_json::to_string(&rec.det_snapshot()).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn a_null_recorder_never_perturbs_a_run(
        seed in 0u64..1_000_000,
        adv in 0u8..3,
    ) {
        let instrumented = || ObsHandle::new(Arc::new(NullRecorder));
        let (plain, with_null) = match adv {
            0 => (
                round_fingerprint(seed, 6, NullAdversary, None),
                round_fingerprint(seed, 6, NullAdversary, Some(instrumented())),
            ),
            1 => (
                round_fingerprint(seed, 6, RandomChurnAdversary::new(2, seed), None),
                round_fingerprint(
                    seed, 6, RandomChurnAdversary::new(2, seed), Some(instrumented()),
                ),
            ),
            _ => (
                round_fingerprint(seed, 6, TargetedSwarmAdversary::new(1, seed), None),
                round_fingerprint(
                    seed, 6, TargetedSwarmAdversary::new(1, seed), Some(instrumented()),
                ),
            ),
        };
        prop_assert_eq!(plain, with_null);
    }

    #[test]
    fn proto_counters_agree_between_round_and_sub_round_event_runs(
        seed in 0u64..1_000_000,
        churny in 0u8..2,
    ) {
        let snapshot = |rec: &ObsRecorder| {
            serde_json::to_string(&rec.det_snapshot().filtered("proto.")).unwrap()
        };

        let round_rec = Arc::new(ObsRecorder::new());
        let event_rec = Arc::new(ObsRecorder::new());
        if churny == 1 {
            round_fingerprint(
                seed, 5, RandomChurnAdversary::new(2, seed),
                Some(ObsHandle::new(round_rec.clone())),
            );
            // 500 ticks = half a round: every message lands by its next
            // boundary, so the protocol trace is the round engine's.
            event_fingerprint(
                seed, 5, 500, RandomChurnAdversary::new(2, seed),
                Some(ObsHandle::new(event_rec.clone())),
            );
        } else {
            round_fingerprint(seed, 5, NullAdversary, Some(ObsHandle::new(round_rec.clone())));
            event_fingerprint(
                seed, 5, 500, NullAdversary, Some(ObsHandle::new(event_rec.clone())),
            );
        }
        prop_assert_eq!(snapshot(&round_rec), snapshot(&event_rec));
    }
}

#[test]
fn a_null_recorder_never_perturbs_an_event_run() {
    // The event harness has its own instrumented path; one deterministic
    // pin (super-round latency, so delivery genuinely straddles rounds).
    let plain = event_fingerprint(13, 6, 1500, RandomChurnAdversary::new(2, 13), None);
    let with_null = event_fingerprint(
        13,
        6,
        1500,
        RandomChurnAdversary::new(2, 13),
        Some(ObsHandle::new(Arc::new(NullRecorder))),
    );
    assert_eq!(plain, with_null);
}

#[test]
fn obs_snapshots_are_byte_identical_across_thread_caps() {
    for seed in [3u64, 11] {
        let cap1 = round_snapshot(seed, 6, 1);
        for cap in [2, 4] {
            assert_eq!(
                cap1,
                round_snapshot(seed, 6, cap),
                "seed {seed}: deterministic snapshot must not depend on the thread cap {cap}"
            );
        }
    }
}
