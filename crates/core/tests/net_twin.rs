//! Differential twin tests: a recorded loopback-TCP run, replayed as a
//! fixed-fate schedule in the event engine, must reproduce the transport
//! run's protocol state exactly.
//!
//! The argument is inductive. Both runtimes share genesis (same
//! seed/hash-seed derivation, same node factory), churn arbitration
//! (`apply_churn_plan` over the same lateness-filtered knowledge), RNG
//! streams (pure functions of `(seed, node, round)`) and inbox order
//! (global send order). The only free variable — each message's fate — is
//! pinned by the recorded [`MessageTrace`]. So if round `t` starts from
//! equal states, round `t` ends in equal states; wall-clock scheduling has
//! nowhere left to hide. These assertions hold on any machine at any load:
//! a slow CI merely records different (still valid) fates.

use std::time::Duration;

use tsa_adversary::{RandomChurnAdversary, TargetedSwarmAdversary};
use tsa_core::{AsyncMaintenanceHarness, MaintenanceParams, NetMaintenanceHarness};
use tsa_sim::{Adversary, NullAdversary};

fn small_params(n: usize) -> MaintenanceParams {
    MaintenanceParams::new(n)
        .with_c(1.5)
        .with_tau(4)
        .with_replication(2)
}

/// Runs the transport, replays its trace in the event engine, and demands
/// an identical protocol-state outcome: report, membership, and every
/// node's full observable snapshot.
fn assert_twin_reproduces<A: Adversary>(
    label: &str,
    params: MaintenanceParams,
    seed: u64,
    rounds: u64,
    make_adversary: impl Fn() -> A,
) {
    let mut real = NetMaintenanceHarness::assemble(
        params,
        make_adversary(),
        seed,
        params.paper_churn_rules(),
        params.paper_lateness(),
        Duration::from_millis(15),
    );
    real.run(rounds);
    let trace = real.trace();
    assert_eq!(
        trace.len() as u64,
        real.net_stats().sent,
        "{label}/{seed}: one fate per sent message"
    );

    let mut twin = AsyncMaintenanceHarness::assemble_replay(
        params,
        make_adversary(),
        seed,
        params.paper_churn_rules(),
        params.paper_lateness(),
        trace,
    );
    twin.run(rounds);

    assert_eq!(
        real.runner().member_ids(),
        twin.simulator().member_ids(),
        "{label}/{seed}: membership diverged"
    );
    assert_eq!(
        serde_json::to_string(&real.report()).unwrap(),
        serde_json::to_string(&twin.report()).unwrap(),
        "{label}/{seed}: health report diverged"
    );
    assert_eq!(
        serde_json::to_string(&real.snapshots()).unwrap(),
        serde_json::to_string(&twin.snapshots()).unwrap(),
        "{label}/{seed}: node snapshots diverged"
    );
}

#[test]
fn churn_free_runs_twin_exactly() {
    let params = small_params(16);
    let rounds = params.bootstrap_rounds() + 6;
    for seed in [11, 23] {
        assert_twin_reproduces("null", params, seed, rounds, || NullAdversary);
    }
}

#[test]
fn random_churn_runs_twin_exactly() {
    let params = small_params(16);
    let rounds = params.bootstrap_rounds() + 8;
    for seed in [5, 42] {
        assert_twin_reproduces("random-churn", params, seed, rounds, || {
            RandomChurnAdversary::new(2, seed)
        });
    }
}

#[test]
fn targeted_swarm_runs_twin_exactly() {
    let params = small_params(16);
    let rounds = params.bootstrap_rounds() + 8;
    for seed in [7, 31] {
        assert_twin_reproduces("targeted-swarm", params, seed, rounds, || {
            TargetedSwarmAdversary::new(2, seed)
        });
    }
}
