//! Folding cell records into per-axis summary tables.
//!
//! Cells are grouped by their axis point (every spec knob except the seeds),
//! and each group's seed replicates are folded per metric through
//! [`tsa_analysis::Replicates`]: mean, min, max and a 95% confidence
//! half-width. The result is serializable — it is what `BENCH_*.json` stores
//! by default — and renders as a markdown [`Table`].

use serde::{Deserialize, Serialize};
use tsa_analysis::{MetricSummary, Replicates, Table};
use tsa_scenario::ScenarioOutcome;

use crate::shard::CellRecord;

/// The aggregated summary of one sweep: one row per grid cell (axis point),
/// folded over seed replicates.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SweepAggregate {
    /// The sweep's name.
    pub sweep: String,
    /// Total cell records folded.
    pub cells: usize,
    /// One summary per axis point, in enumeration order.
    pub groups: Vec<GroupSummary>,
}

/// The folded replicates of one axis point.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GroupSummary {
    /// Human-readable axis point (shared by all replicates).
    pub label: String,
    /// Number of seed replicates folded.
    pub replicates: usize,
    /// Per-metric summaries, in a fixed per-kind order.
    pub metrics: Vec<MetricSummary>,
}

impl GroupSummary {
    /// Looks up a metric summary by name.
    pub fn metric(&self, name: &str) -> Option<&MetricSummary> {
        self.metrics.iter().find(|m| m.name == name)
    }
}

/// The metrics one outcome contributes to its group, in a fixed order per
/// scenario kind.
pub fn outcome_metrics(outcome: &ScenarioOutcome) -> Vec<(&'static str, f64)> {
    let mut metrics = Vec::new();
    if let Some(m) = &outcome.maintenance {
        let lambda = outcome.spec.maintenance_params().lambda() as f64;
        metrics.push(("routable", if m.report.is_routable() { 1.0 } else { 0.0 }));
        metrics.push(("connected", if m.report.connected { 1.0 } else { 0.0 }));
        metrics.push((
            "largest_component_fraction",
            m.report.largest_component_fraction,
        ));
        metrics.push(("participation_rate", m.report.participation_rate));
        metrics.push(("min_swarm_size", m.report.min_swarm_size as f64));
        metrics.push(("max_connect_load", m.max_connect_load as f64));
        metrics.push(("peak_congestion", m.metrics_summary.peak_congestion as f64));
        metrics.push((
            "peak_congestion_per_lambda3",
            m.metrics_summary.peak_congestion as f64 / (lambda * lambda * lambda),
        ));
        metrics.push((
            "mean_messages_per_node_round",
            m.metrics_summary.mean_messages_per_node_round,
        ));
    }
    if let Some(b) = &outcome.baseline {
        metrics.push((
            "largest_component_fraction",
            b.resilience.largest_component_fraction,
        ));
        metrics.push(("removed", b.resilience.removed as f64));
        metrics.push(("isolated_survivors", b.resilience.isolated_survivors as f64));
        metrics.push(("eclipse_budget", b.eclipse_budget as f64));
    }
    if let Some(r) = &outcome.routing {
        metrics.push(("delivery_rate", r.delivery_rate));
        metrics.push(("dilation", r.dilation as f64));
        metrics.push(("max_congestion", r.max_congestion as f64));
        metrics.push(("mean_congestion", r.mean_congestion));
        metrics.push(("total_copies", r.total_copies as f64));
        metrics.push(("mean_target_coverage", r.mean_target_coverage));
    }
    if let Some(s) = &outcome.sampling {
        metrics.push(("discard_rate", s.discard_rate));
        metrics.push(("distinct_nodes", s.distinct_nodes as f64));
        metrics.push(("hits_min", s.hits_min as f64));
        metrics.push(("hits_max", s.hits_max as f64));
        metrics.push(("total_variation", s.total_variation));
        metrics.push((
            "chi_square_per_df",
            s.chi_square / s.degrees_of_freedom.max(1) as f64,
        ));
    }
    metrics
}

/// Folds sorted cell records into their per-axis aggregate. Groups appear in
/// first-seen (enumeration) order, so the fold is deterministic and
/// independent of which cells were resumed versus freshly run.
pub fn aggregate(sweep: &str, records: &[CellRecord]) -> SweepAggregate {
    struct Group {
        label: String,
        replicates: usize,
        names: Vec<&'static str>,
        replicate_sets: Vec<Replicates>,
    }

    let mut order: Vec<String> = Vec::new();
    let mut groups: std::collections::HashMap<String, Group> = std::collections::HashMap::new();
    for record in records {
        let label = record.outcome.spec.axis_label();
        let metrics = outcome_metrics(&record.outcome);
        let group = groups.entry(label.clone()).or_insert_with(|| {
            order.push(label.clone());
            Group {
                label,
                replicates: 0,
                names: metrics.iter().map(|(n, _)| *n).collect(),
                replicate_sets: metrics.iter().map(|_| Replicates::new()).collect(),
            }
        });
        group.replicates += 1;
        for (name, value) in metrics {
            match group.names.iter().position(|n| *n == name) {
                Some(i) => group.replicate_sets[i].push(value),
                None => {
                    group.names.push(name);
                    let mut r = Replicates::new();
                    r.push(value);
                    group.replicate_sets.push(r);
                }
            }
        }
    }

    let groups = order
        .into_iter()
        .map(|label| {
            let g = groups.remove(&label).expect("group recorded in order");
            GroupSummary {
                label: g.label,
                replicates: g.replicates,
                metrics: g
                    .names
                    .iter()
                    .zip(&g.replicate_sets)
                    .map(|(name, reps)| reps.summarize(name))
                    .collect(),
            }
        })
        .collect();
    SweepAggregate {
        sweep: sweep.to_string(),
        cells: records.len(),
        groups,
    }
}

impl SweepAggregate {
    /// Renders the aggregate as a markdown table: one row per axis point, one
    /// column per metric (the union across groups, in first-seen order).
    pub fn to_table(&self) -> Table {
        let mut columns: Vec<&str> = Vec::new();
        for group in &self.groups {
            for m in &group.metrics {
                if !columns.contains(&m.name.as_str()) {
                    columns.push(&m.name);
                }
            }
        }
        let mut headers = vec!["cell", "seeds"];
        headers.extend(columns.iter().copied());
        let mut table = Table::new(&format!("sweep: {}", self.sweep), &headers);
        for group in &self.groups {
            let mut row = vec![group.label.clone(), group.replicates.to_string()];
            for column in &columns {
                row.push(
                    group
                        .metric(column)
                        .map(|m| m.display())
                        .unwrap_or_else(|| "-".to_string()),
                );
            }
            table.row(row);
        }
        table
    }

    /// The aggregate's canonical JSON form (used by tests to pin that resume
    /// reproduces the identical aggregate).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("aggregates serialize")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::SweepRunner;
    use crate::spec::SweepSpec;
    use tsa_scenario::{ScenarioKind, ScenarioSpec};

    #[test]
    fn replicates_fold_into_groups_with_cis() {
        let mut base = ScenarioSpec::new(ScenarioKind::Sampling, 32);
        base.attempts = 400;
        let run = SweepRunner::new(SweepSpec::new("agg", base).over_n([32, 48]).seeds(1, 3))
            .threads(2)
            .run();
        let agg = aggregate("agg", &run.records);
        assert_eq!(agg.cells, 6);
        assert_eq!(agg.groups.len(), 2, "two axis points");
        for group in &agg.groups {
            assert_eq!(group.replicates, 3);
            let discard = group.metric("discard_rate").expect("sampling metric");
            assert_eq!(discard.count, 3);
            assert!(discard.min <= discard.mean && discard.mean <= discard.max);
        }
        // Groups follow enumeration order (n = 32 first).
        assert!(
            agg.groups[0].label.contains("n=32"),
            "{}",
            agg.groups[0].label
        );
        let table = agg.to_table().to_markdown();
        assert!(table.contains("discard_rate"));
        // Round-trips through serde.
        let back: SweepAggregate = serde_json::from_str(&agg.to_json()).unwrap();
        assert_eq!(back.to_json(), agg.to_json());
    }
}
