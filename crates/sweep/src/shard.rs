//! Streaming shard output: one JSONL record per completed cell.
//!
//! The executor appends a [`CellRecord`] line to the shard file the moment a
//! cell finishes, so a killed sweep loses at most the cells that were still
//! in flight. Re-running the same sweep against the same shard path *resumes*:
//! records whose spec and round count still match the enumerated cell are
//! trusted (each cell is a pure function of its spec), everything else —
//! missing cells, a truncated final line from a kill, records left by an
//! older sweep definition — is simply recomputed.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use serde::{Deserialize, Serialize};
use tsa_scenario::ScenarioOutcome;

use crate::spec::SweepCell;

/// One completed cell, as stored on a shard line.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CellRecord {
    /// The cell's position in the sweep enumeration order.
    pub cell: usize,
    /// The measured rounds the cell ran.
    pub rounds: u64,
    /// The cell's outcome (its spec embedded inside).
    pub outcome: ScenarioOutcome,
}

impl CellRecord {
    /// Whether this record is a valid checkpoint for `cell`: same position,
    /// same requested rounds, and the outcome's embedded spec matches the
    /// enumerated spec. For one-shot kinds the bootstrap flag is ignored (it
    /// is meaningless there); maintained cells compare it strictly, because
    /// it changes the result.
    pub fn matches(&self, cell: &SweepCell) -> bool {
        let mut spec = self.outcome.spec.clone();
        if !matches!(cell.spec.kind, tsa_scenario::ScenarioKind::MaintainedLds) {
            spec.bootstrap = cell.spec.bootstrap;
        }
        self.cell == cell.index && self.rounds == cell.rounds && spec == cell.spec
    }

    /// The record's compact single-line JSON form.
    pub fn to_jsonl(&self) -> String {
        serde_json::to_string(self).expect("cell records serialize")
    }
}

/// Appends one record to `writer` as a JSONL line and flushes, so the line is
/// durable the moment the cell completes.
pub fn append_record<W: Write>(writer: &mut W, record: &CellRecord) -> std::io::Result<()> {
    writeln!(writer, "{}", record.to_jsonl())?;
    writer.flush()
}

/// Reads every parseable record from a shard file. Unparseable lines — the
/// truncated tail a killed run leaves behind, or garbage — are counted, not
/// fatal.
pub fn read_shards(path: &Path) -> std::io::Result<(Vec<CellRecord>, usize)> {
    let file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok((Vec::new(), 0)),
        Err(e) => return Err(e),
    };
    let mut records = Vec::new();
    let mut skipped = 0usize;
    for line in BufReader::new(file).lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        match serde_json::from_str::<CellRecord>(&line) {
            Ok(record) => records.push(record),
            Err(_) => skipped += 1,
        }
    }
    Ok((records, skipped))
}

/// Splits shard records into checkpoints usable for `cells` (keyed by cell
/// index) and the count of stale records that no longer match the sweep.
pub fn usable_checkpoints(
    records: Vec<CellRecord>,
    cells: &[SweepCell],
) -> (HashMap<usize, CellRecord>, usize) {
    let mut usable = HashMap::new();
    let mut stale = 0usize;
    for record in records {
        match cells.get(record.cell) {
            Some(cell) if record.matches(cell) => {
                usable.insert(record.cell, record);
            }
            _ => stale += 1,
        }
    }
    (usable, stale)
}

/// Opens a shard file for appending (creating parent directories and the file
/// as needed), wrapped in a buffered writer. If a previous run was killed
/// mid-write the file ends without a newline; a separator is written first so
/// the next record starts on its own line instead of merging into the
/// truncated tail.
pub fn open_shard_for_append(path: &Path) -> std::io::Result<BufWriter<File>> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let ends_mid_line = (|| -> std::io::Result<bool> {
        use std::io::{Read, Seek, SeekFrom};
        let mut file = File::open(path)?;
        if file.metadata()?.len() == 0 {
            return Ok(false);
        }
        file.seek(SeekFrom::End(-1))?;
        let mut last = [0u8; 1];
        file.read_exact(&mut last)?;
        Ok(last[0] != b'\n')
    })()
    .unwrap_or(false);
    let mut writer = BufWriter::new(OpenOptions::new().create(true).append(true).open(path)?);
    if ends_mid_line {
        writeln!(writer)?;
        writer.flush()?;
    }
    Ok(writer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SweepSpec;
    use tsa_scenario::{Scenario, ScenarioKind, ScenarioSpec};

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("tsa-sweep-shard-{}-{name}", std::process::id()))
    }

    fn sample_record(index: usize) -> (SweepCell, CellRecord) {
        let spec = ScenarioSpec::new(ScenarioKind::Sampling, 32).with_seed(9 + index as u64);
        let mut spec = spec;
        spec.attempts = 500;
        let outcome = Scenario::from_spec(spec.clone()).run(0);
        let cell = SweepCell {
            index,
            spec,
            rounds: 0,
        };
        (
            cell,
            CellRecord {
                cell: index,
                rounds: 0,
                outcome,
            },
        )
    }

    #[test]
    fn records_survive_a_write_read_cycle_and_tolerate_truncation() {
        let path = tmp("rw");
        let _ = std::fs::remove_file(&path);
        let (cell, record) = sample_record(0);
        {
            let mut w = open_shard_for_append(&path).unwrap();
            append_record(&mut w, &record).unwrap();
            // Simulate a kill mid-write: a truncated second line.
            write!(w, "{{\"cell\":1,\"rounds\":0,\"outc").unwrap();
            w.flush().unwrap();
        }
        let (records, skipped) = read_shards(&path).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(skipped, 1, "the truncated tail is skipped, not fatal");
        assert!(records[0].matches(&cell));
        assert_eq!(records[0].to_jsonl(), record.to_jsonl());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_shard_files_read_as_empty() {
        let (records, skipped) = read_shards(&tmp("missing-never-created")).unwrap();
        assert!(records.is_empty());
        assert_eq!(skipped, 0);
    }

    #[test]
    fn stale_records_are_rejected_by_checkpoint_matching() {
        let (cell, good) = sample_record(0);
        // A record whose spec drifted (different n) must not be trusted.
        let mut stale = good.clone();
        stale.outcome.spec.n = 64;
        // A record pointing past the enumeration is stale too.
        let mut out_of_range = good.clone();
        out_of_range.cell = 99;
        let sweep_cells = vec![cell];
        let (usable, stale_count) =
            usable_checkpoints(vec![good, stale, out_of_range], &sweep_cells);
        assert_eq!(usable.len(), 1);
        assert_eq!(stale_count, 2);
        assert!(usable.contains_key(&0));
    }

    #[test]
    fn bootstrap_correction_does_not_invalidate_checkpoints() {
        // run() corrects spec.bootstrap to what actually happened; a one-shot
        // kind never bootstraps, so the outcome's flag may differ from the
        // enumerated cell's. matches() must tolerate exactly that field.
        let base = ScenarioSpec::new(ScenarioKind::Routing, 32);
        let sweep = SweepSpec::new("b", base);
        let cells = sweep.enumerate();
        let outcome = Scenario::from_spec(cells[0].spec.clone()).run(cells[0].rounds);
        let record = CellRecord {
            cell: 0,
            rounds: cells[0].rounds,
            outcome,
        };
        assert!(record.matches(&cells[0]));
    }
}
