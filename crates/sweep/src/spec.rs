//! The declarative grammar of a parameter sweep and its enumeration into
//! concrete scenario cells.
//!
//! A [`SweepSpec`] is plain serde data, exactly like
//! [`ScenarioSpec`]: a base scenario plus a set of
//! *axes* (each a list of values to sweep) and a seed range of replicates.
//! [`SweepSpec::enumerate`] expands the cartesian product of all non-empty
//! axes × the seed range into [`SweepCell`]s, each carrying the fully
//! resolved `ScenarioSpec` and round count — so running a cell is *exactly*
//! `Scenario::from_spec(cell.spec).run(cell.rounds)`, bit-identical to a
//! standalone run at the same seed.

use serde::{Deserialize, Serialize};
use tsa_scenario::{
    AdversarySpec, ByzantineSpec, ChurnSpec, ExecutionModel, FaultPlan, ScenarioKind, ScenarioSpec,
    Topology,
};
use tsa_sim::Lateness;

/// A contiguous range of master seeds: the replicates of every grid cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SeedRange {
    /// First master seed.
    pub start: u64,
    /// Number of replicates (at least 1 is enumerated even when 0).
    pub count: u64,
}

impl SeedRange {
    /// `count` replicates starting at `start`.
    pub fn new(start: u64, count: u64) -> Self {
        SeedRange { start, count }
    }

    /// The seeds of this range, in order.
    pub fn seeds(&self) -> impl Iterator<Item = u64> {
        let start = self.start;
        (0..self.count.max(1)).map(move |i| start.wrapping_add(i))
    }

    /// Number of replicates enumerated (never 0).
    pub fn len(&self) -> usize {
        self.count.max(1) as usize
    }

    /// Always `false`: a range enumerates at least one seed.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// How many measured rounds each cell runs (after the optional bootstrap).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RoundsSpec {
    /// A fixed number of rounds (one-shot kinds ignore it).
    Fixed(u64),
    /// `m · maturity_age(n)` rounds, resolved per cell against the cell's own
    /// maintenance parameters — the natural unit for maintained scenarios,
    /// scaling with the `n` axis.
    MaturityAges(u64),
}

impl RoundsSpec {
    /// Resolves the measured round count for `spec`.
    pub fn resolve(&self, spec: &ScenarioSpec) -> u64 {
        match *self {
            RoundsSpec::Fixed(rounds) => rounds,
            RoundsSpec::MaturityAges(m) => m * spec.maintenance_params().maturity_age(),
        }
    }
}

/// One concrete cell of an enumerated sweep.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SweepCell {
    /// Position in the enumeration order (stable across runs; the shard
    /// checkpoint key).
    pub index: usize,
    /// The fully resolved scenario.
    pub spec: ScenarioSpec,
    /// Measured rounds the cell runs.
    pub rounds: u64,
}

/// A declarative parameter sweep: a base scenario, the axes to sweep, and a
/// seed range of replicates.
///
/// Every `Vec` field is an axis: empty means "keep the base spec's value",
/// non-empty means "take the cartesian product over these values". The
/// enumeration order is fixed and documented (kind, n, c, δ, τ, r, churn,
/// adversary, lateness, execution model, topology, fault plan, byzantine
/// role, k, holder failure, attempts, then seed innermost), so cell indices
/// are stable for shard checkpoints.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SweepSpec {
    /// Name of the sweep (shard file stem, table title).
    pub name: String,
    /// The template every cell starts from.
    pub base: ScenarioSpec,
    /// Measured rounds per cell.
    pub rounds: RoundsSpec,
    /// Seed replicates of every grid cell.
    pub seeds: SeedRange,
    /// Axis over the experiment kind (e.g. the four Table-1 baselines).
    pub kind: Vec<ScenarioKind>,
    /// Axis over the network size `n`.
    pub n: Vec<usize>,
    /// Axis over the robustness parameter `c`.
    pub c: Vec<f64>,
    /// Axis over `δ` (fresh-node connects per round).
    pub delta: Vec<usize>,
    /// Axis over `τ` (sampling tokens per round).
    pub tau: Vec<usize>,
    /// Axis over the replication factor `r`.
    pub replication: Vec<usize>,
    /// Axis over the churn budget / join rules.
    pub churn: Vec<ChurnSpec>,
    /// Axis over the attack strategy.
    pub adversary: Vec<AdversarySpec>,
    /// Axis over the adversary lateness.
    pub lateness: Vec<Lateness>,
    /// Axis over the execution model (round engine vs event engine under
    /// latency/jitter/loss). Absent in pre-`tsa-event` sweep specs, so it
    /// defaults to empty ("keep the base spec's engine") and is skipped when
    /// empty, keeping old spec JSON byte-identical.
    ///
    /// Like the churn/adversary/lateness axes, this axis is meaningful for
    /// maintained cells only: one-shot kinds ignore the execution model, so
    /// crossing it with them re-runs identical cells that fold into one
    /// aggregate group (their axis labels omit `exec=`).
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub execution: Vec<ExecutionModel>,
    /// Axis over the link topology (regional partitions, scheduled bridges,
    /// per-link overrides). Each value is applied *on top of* the cell's
    /// execution model via
    /// [`ExecutionModel::with_topology`] — a synchronous base
    /// switches to the event engine under that topology. Absent in
    /// pre-topology sweep specs, so it defaults to empty ("keep the cell's
    /// network as is") and is skipped when empty, keeping old spec JSON
    /// byte-identical. Meaningful for maintained cells only, exactly like
    /// the execution axis.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub topology: Vec<Topology>,
    /// Axis over the fault-injection plan applied at the message boundary.
    /// Each plan routes its cell onto the event engine (see
    /// [`ScenarioSpec::faults`]). Absent in pre-fault sweep specs, so it
    /// defaults to empty ("keep the base spec's plan") and is skipped when
    /// empty, keeping old spec JSON byte-identical. Meaningful for
    /// maintained cells only, exactly like the execution axis.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub faults: Vec<FaultPlan>,
    /// Axis over the byzantine role assignment (which id slice misbehaves,
    /// and how). Absent in pre-byzantine sweep specs, so it defaults to
    /// empty and is skipped when empty, keeping old spec JSON
    /// byte-identical. Meaningful for maintained cells only.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub byzantine: Vec<ByzantineSpec>,
    /// Axis over messages per node in routing workloads.
    pub messages_per_node: Vec<usize>,
    /// Axis over the per-step holder failure probability.
    pub holder_failure: Vec<f64>,
    /// Axis over sampling attempts.
    pub attempts: Vec<usize>,
    /// Upper bound on worker threads for this sweep (`None` = no bound
    /// beyond `TSA_THREADS` / the machine). CI specs pin this to keep small
    /// boxes responsive.
    pub max_parallel: Option<usize>,
}

impl SweepSpec {
    /// A sweep named `name` over the single cell described by `base`, with
    /// one seed replicate (the base's own seed) and no axes. Fill in axes by
    /// mutating the public fields or through the `over_*` builders.
    pub fn new(name: &str, base: ScenarioSpec) -> Self {
        SweepSpec {
            name: name.to_string(),
            rounds: RoundsSpec::Fixed(0),
            seeds: SeedRange::new(base.seed, 1),
            base,
            kind: Vec::new(),
            n: Vec::new(),
            c: Vec::new(),
            delta: Vec::new(),
            tau: Vec::new(),
            replication: Vec::new(),
            churn: Vec::new(),
            adversary: Vec::new(),
            lateness: Vec::new(),
            execution: Vec::new(),
            topology: Vec::new(),
            faults: Vec::new(),
            byzantine: Vec::new(),
            messages_per_node: Vec::new(),
            holder_failure: Vec::new(),
            attempts: Vec::new(),
            max_parallel: None,
        }
    }

    /// Sets the per-cell round count.
    pub fn rounds(mut self, rounds: RoundsSpec) -> Self {
        self.rounds = rounds;
        self
    }

    /// Sets the seed range: `count` replicates starting at `start`.
    pub fn seeds(mut self, start: u64, count: u64) -> Self {
        self.seeds = SeedRange::new(start, count);
        self
    }

    /// Sweeps the experiment kind.
    pub fn over_kinds(mut self, kinds: impl IntoIterator<Item = ScenarioKind>) -> Self {
        self.kind = kinds.into_iter().collect();
        self
    }

    /// Sweeps the network size `n`.
    pub fn over_n(mut self, ns: impl IntoIterator<Item = usize>) -> Self {
        self.n = ns.into_iter().collect();
        self
    }

    /// Sweeps the robustness parameter `c`.
    pub fn over_c(mut self, cs: impl IntoIterator<Item = f64>) -> Self {
        self.c = cs.into_iter().collect();
        self
    }

    /// Sweeps `τ`.
    pub fn over_tau(mut self, taus: impl IntoIterator<Item = usize>) -> Self {
        self.tau = taus.into_iter().collect();
        self
    }

    /// Sweeps the replication factor `r`.
    pub fn over_replication(mut self, rs: impl IntoIterator<Item = usize>) -> Self {
        self.replication = rs.into_iter().collect();
        self
    }

    /// Sweeps the churn budget.
    pub fn over_churn(mut self, churns: impl IntoIterator<Item = ChurnSpec>) -> Self {
        self.churn = churns.into_iter().collect();
        self
    }

    /// Sweeps the attack strategy.
    pub fn over_adversaries(mut self, advs: impl IntoIterator<Item = AdversarySpec>) -> Self {
        self.adversary = advs.into_iter().collect();
        self
    }

    /// Sweeps the execution model (synchronous rounds vs asynchronous
    /// latency regimes). Meaningful for maintained scenarios; one-shot kinds
    /// ignore the execution model (see the field docs).
    pub fn over_execution(mut self, models: impl IntoIterator<Item = ExecutionModel>) -> Self {
        self.execution = models.into_iter().collect();
        self
    }

    /// Sweeps the link topology (regional partitions with slow/lossy/
    /// scheduled bridges, per-link overrides), applied on top of each cell's
    /// execution model. Meaningful for maintained scenarios only (see the
    /// field docs).
    pub fn over_topology(mut self, topologies: impl IntoIterator<Item = Topology>) -> Self {
        self.topology = topologies.into_iter().collect();
        self
    }

    /// Sweeps the fault-injection plan applied at the message boundary.
    /// Meaningful for maintained scenarios only (see the field docs).
    pub fn over_faults(mut self, plans: impl IntoIterator<Item = FaultPlan>) -> Self {
        self.faults = plans.into_iter().collect();
        self
    }

    /// Sweeps the byzantine role assignment. Meaningful for maintained
    /// scenarios only (see the field docs).
    pub fn over_byzantine(mut self, specs: impl IntoIterator<Item = ByzantineSpec>) -> Self {
        self.byzantine = specs.into_iter().collect();
        self
    }

    /// Sweeps messages per node (routing workloads).
    pub fn over_messages_per_node(mut self, ks: impl IntoIterator<Item = usize>) -> Self {
        self.messages_per_node = ks.into_iter().collect();
        self
    }

    /// Sweeps the holder failure probability (routing workloads).
    pub fn over_holder_failure(mut self, ps: impl IntoIterator<Item = f64>) -> Self {
        self.holder_failure = ps.into_iter().collect();
        self
    }

    /// Bounds the worker threads used for this sweep.
    pub fn max_parallel(mut self, threads: usize) -> Self {
        self.max_parallel = Some(threads);
        self
    }

    /// Number of cells the sweep enumerates (grid size × seed replicates).
    pub fn cell_count(&self) -> usize {
        let axis = |len: usize| len.max(1);
        axis(self.kind.len())
            * axis(self.n.len())
            * axis(self.c.len())
            * axis(self.delta.len())
            * axis(self.tau.len())
            * axis(self.replication.len())
            * axis(self.churn.len())
            * axis(self.adversary.len())
            * axis(self.lateness.len())
            * axis(self.execution.len())
            * axis(self.topology.len())
            * axis(self.faults.len())
            * axis(self.byzantine.len())
            * axis(self.messages_per_node.len())
            * axis(self.holder_failure.len())
            * axis(self.attempts.len())
            * self.seeds.len()
    }

    /// Expands the cartesian grid × seed range into concrete cells, in the
    /// fixed enumeration order (seed varies fastest).
    pub fn enumerate(&self) -> Vec<SweepCell> {
        // Each axis contributes either its values (by reference — axis
        // values such as topologies need not be `Copy`) or the single "keep
        // the base" marker (None).
        fn axis<T>(values: &[T]) -> Vec<Option<&T>> {
            if values.is_empty() {
                vec![None]
            } else {
                values.iter().map(Some).collect()
            }
        }

        let kinds = axis(&self.kind);
        let ns = axis(&self.n);
        let cs = axis(&self.c);
        let deltas = axis(&self.delta);
        let taus = axis(&self.tau);
        let replications = axis(&self.replication);
        let churns = axis(&self.churn);
        let adversaries = axis(&self.adversary);
        let latenesses = axis(&self.lateness);
        let executions = axis(&self.execution);
        let topologies = axis(&self.topology);
        let fault_plans = axis(&self.faults);
        let byzantines = axis(&self.byzantine);
        let ks = axis(&self.messages_per_node);
        let fails = axis(&self.holder_failure);
        let attempts_axis = axis(&self.attempts);

        let mut cells = Vec::with_capacity(self.cell_count());
        for &kind in &kinds {
            for &n in &ns {
                for &c in &cs {
                    for &delta in &deltas {
                        for &tau in &taus {
                            for &replication in &replications {
                                for &churn in &churns {
                                    for &adversary in &adversaries {
                                        for &lateness in &latenesses {
                                            for &execution in &executions {
                                                for &topology in &topologies {
                                                    for &fault_plan in &fault_plans {
                                                        for &byz in &byzantines {
                                                            for &k in &ks {
                                                                for &fail in &fails {
                                                                    for &attempts in &attempts_axis
                                                                    {
                                                                        for seed in
                                                                            self.seeds.seeds()
                                                                        {
                                                                            let mut spec = self
                                                                                .base
                                                                                .clone()
                                                                                .with_seed(seed);
                                                                            if let Some(kind) = kind
                                                                            {
                                                                                spec.kind = *kind;
                                                                            }
                                                                            if let Some(n) = n {
                                                                                spec.n = *n;
                                                                            }
                                                                            if let Some(c) = c {
                                                                                spec.c = Some(*c);
                                                                            }
                                                                            if let Some(delta) =
                                                                                delta
                                                                            {
                                                                                spec.delta =
                                                                                    Some(*delta);
                                                                            }
                                                                            if let Some(tau) = tau {
                                                                                spec.tau =
                                                                                    Some(*tau);
                                                                            }
                                                                            if let Some(r) =
                                                                                replication
                                                                            {
                                                                                spec.replication =
                                                                                    Some(*r);
                                                                            }
                                                                            if let Some(churn) =
                                                                                churn
                                                                            {
                                                                                spec.churn = *churn;
                                                                            }
                                                                            if let Some(adv) =
                                                                                adversary
                                                                            {
                                                                                spec.adversary =
                                                                                    *adv;
                                                                            }
                                                                            if let Some(l) =
                                                                                lateness
                                                                            {
                                                                                spec.lateness =
                                                                                    Some(*l);
                                                                            }
                                                                            if let Some(x) =
                                                                                execution
                                                                            {
                                                                                spec.execution =
                                                                                    x.clone();
                                                                            }
                                                                            if let Some(t) =
                                                                                topology
                                                                            {
                                                                                spec.execution = spec
                                                                            .execution
                                                                            .with_topology(
                                                                                t.clone(),
                                                                            );
                                                                            }
                                                                            if let Some(p) =
                                                                                fault_plan
                                                                            {
                                                                                spec.faults =
                                                                                    Some(p.clone());
                                                                            }
                                                                            if let Some(b) = byz {
                                                                                spec.byzantine =
                                                                                    Some(*b);
                                                                            }
                                                                            if let Some(k) = k {
                                                                                spec.messages_per_node = *k;
                                                                            }
                                                                            if let Some(p) = fail {
                                                                                spec.holder_failure = *p;
                                                                            }
                                                                            if let Some(a) =
                                                                                attempts
                                                                            {
                                                                                spec.attempts = *a;
                                                                            }
                                                                            let rounds = self
                                                                                .rounds
                                                                                .resolve(&spec);
                                                                            cells.push(SweepCell {
                                                                                index: cells.len(),
                                                                                spec,
                                                                                rounds,
                                                                            });
                                                                        }
                                                                    }
                                                                }
                                                            }
                                                        }
                                                    }
                                                }
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        cells
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsa_scenario::BaselineKind;

    fn routing_base() -> ScenarioSpec {
        ScenarioSpec::new(ScenarioKind::Routing, 64)
    }

    #[test]
    fn empty_axes_enumerate_the_base_cell() {
        let sweep = SweepSpec::new("one", routing_base());
        let cells = sweep.enumerate();
        assert_eq!(cells.len(), 1);
        assert_eq!(sweep.cell_count(), 1);
        assert_eq!(cells[0].index, 0);
        assert_eq!(cells[0].spec, routing_base());
        assert_eq!(cells[0].rounds, 0);
    }

    #[test]
    fn cartesian_product_with_seed_innermost() {
        let sweep = SweepSpec::new("grid", routing_base())
            .over_n([32, 64])
            .over_messages_per_node([1, 2, 4])
            .seeds(10, 2);
        let cells = sweep.enumerate();
        assert_eq!(cells.len(), 12);
        assert_eq!(cells.len(), sweep.cell_count());
        // Seed varies fastest, then k, then n.
        assert_eq!(
            (
                cells[0].spec.n,
                cells[0].spec.messages_per_node,
                cells[0].spec.seed
            ),
            (32, 1, 10)
        );
        assert_eq!(
            (
                cells[1].spec.n,
                cells[1].spec.messages_per_node,
                cells[1].spec.seed
            ),
            (32, 1, 11)
        );
        assert_eq!(
            (
                cells[2].spec.n,
                cells[2].spec.messages_per_node,
                cells[2].spec.seed
            ),
            (32, 2, 10)
        );
        assert_eq!(
            (
                cells[6].spec.n,
                cells[6].spec.messages_per_node,
                cells[6].spec.seed
            ),
            (64, 1, 10)
        );
        for (i, cell) in cells.iter().enumerate() {
            assert_eq!(cell.index, i);
        }
    }

    #[test]
    fn kind_axis_sweeps_the_baselines() {
        let sweep = SweepSpec::new(
            "table1",
            ScenarioSpec::new(ScenarioKind::Baseline(BaselineKind::HdGraph), 128),
        )
        .over_kinds([
            ScenarioKind::Baseline(BaselineKind::HdGraph),
            ScenarioKind::Baseline(BaselineKind::Spartan),
            ScenarioKind::Baseline(BaselineKind::ChordSwarm),
            ScenarioKind::Baseline(BaselineKind::StaticLds),
        ])
        .over_adversaries([AdversarySpec::random(1, 1), AdversarySpec::targeted(1, 1)]);
        let cells = sweep.enumerate();
        assert_eq!(cells.len(), 8);
        assert_eq!(
            cells[2].spec.kind,
            ScenarioKind::Baseline(BaselineKind::Spartan)
        );
    }

    #[test]
    fn maturity_rounds_resolve_per_cell() {
        let base = ScenarioSpec::new(ScenarioKind::MaintainedLds, 48);
        let sweep = SweepSpec::new("m", base)
            .over_n([48, 96])
            .rounds(RoundsSpec::MaturityAges(3));
        let cells = sweep.enumerate();
        assert_eq!(cells.len(), 2);
        let expect = |n: usize| {
            3 * ScenarioSpec::new(ScenarioKind::MaintainedLds, n)
                .maintenance_params()
                .maturity_age()
        };
        assert_eq!(cells[0].rounds, expect(48));
        assert_eq!(cells[1].rounds, expect(96));
        assert!(cells[1].rounds > cells[0].rounds);
    }

    #[test]
    fn execution_axis_sweeps_engines_per_cell() {
        use tsa_scenario::LatencyModel;
        let base = ScenarioSpec::new(ScenarioKind::MaintainedLds, 48);
        let regimes = [
            ExecutionModel::rounds(),
            ExecutionModel::asynchronous(LatencyModel::constant(500)),
            ExecutionModel::asynchronous(LatencyModel::uniform(500, 2500)),
        ];
        let sweep = SweepSpec::new("async", base.clone())
            .over_execution(regimes.clone())
            .seeds(1, 2);
        let cells = sweep.enumerate();
        assert_eq!(cells.len(), 6);
        assert_eq!(sweep.cell_count(), 6);
        assert_eq!(cells[0].spec.execution, regimes[0]);
        assert_eq!(cells[2].spec.execution, regimes[1]);
        assert_eq!(cells[4].spec.execution, regimes[2]);
        // An empty axis keeps the base's engine and serializes exactly as a
        // pre-ExecutionModel sweep spec did.
        let plain = SweepSpec::new("plain", base);
        assert!(!serde_json::to_string(&plain).unwrap().contains("execution"));
        let json = serde_json::to_string(&sweep).unwrap();
        let back: SweepSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, sweep);
        assert_eq!(back.enumerate(), sweep.enumerate());
    }

    #[test]
    fn topology_axis_applies_on_top_of_the_execution_model() {
        use tsa_scenario::{LatencyModel, NetModel, RegionAssign, Topology};
        let net = |t: u64| NetModel::new(LatencyModel::constant(t));
        let base = ScenarioSpec::new(ScenarioKind::MaintainedLds, 48);
        let topologies = [
            Topology::global(net(100)),
            Topology::regions(RegionAssign::halves(24), net(100), net(2500)),
        ];
        // Applied to a synchronous base, the axis switches each cell to the
        // event engine under its topology.
        let sweep = SweepSpec::new("topo", base.clone())
            .over_topology(topologies.clone())
            .seeds(1, 2);
        let cells = sweep.enumerate();
        assert_eq!(cells.len(), 4);
        assert_eq!(sweep.cell_count(), 4);
        assert_eq!(
            cells[0].spec.execution,
            ExecutionModel::topo(topologies[0].clone())
        );
        assert_eq!(
            cells[2].spec.execution,
            ExecutionModel::topo(topologies[1].clone())
        );
        // Crossed with an execution axis, the topology wins the network
        // (enumeration order: execution outside, topology inside).
        let crossed = SweepSpec::new("x", base.clone())
            .over_execution([
                ExecutionModel::rounds(),
                ExecutionModel::asynchronous(LatencyModel::constant(700)),
            ])
            .over_topology(topologies.clone());
        let cells = crossed.enumerate();
        assert_eq!(cells.len(), 4);
        for cell in &cells {
            assert!(!cell.spec.execution.is_rounds());
        }
        assert_eq!(
            cells[1].spec.execution.effective_topology(),
            Some(topologies[1].clone())
        );
        // An empty axis keeps the base's network and serializes exactly as
        // a pre-topology sweep spec did.
        let plain = SweepSpec::new("plain", base);
        assert!(!serde_json::to_string(&plain).unwrap().contains("topology"));
        let json = serde_json::to_string(&sweep).unwrap();
        let back: SweepSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, sweep);
        assert_eq!(back.enumerate(), sweep.enumerate());
    }

    #[test]
    fn fault_and_byzantine_axes_sweep_adversarial_regimes() {
        use tsa_scenario::{ByzantineSpec, FaultAction, FaultPlan, FaultRule, MisbehaviorKind};
        let base = ScenarioSpec::new(ScenarioKind::MaintainedLds, 48);
        let plans = [
            FaultPlan::default(),
            FaultPlan::new().with_rule(FaultRule::every(FaultAction::Drop).with_prob(0.1)),
        ];
        let roles = [
            ByzantineSpec::fraction(0, 8, MisbehaviorKind::StaleClaims),
            ByzantineSpec::fraction(1, 8, MisbehaviorKind::StaleClaims),
            ByzantineSpec::fraction(1, 4, MisbehaviorKind::StaleClaims),
        ];
        let sweep = SweepSpec::new("byz", base.clone())
            .over_faults(plans.clone())
            .over_byzantine(roles)
            .seeds(1, 2);
        let cells = sweep.enumerate();
        assert_eq!(cells.len(), 12);
        assert_eq!(sweep.cell_count(), 12);
        // Enumeration order: fault plan outside, byzantine role inside, seed
        // innermost.
        assert_eq!(cells[0].spec.faults.as_ref(), Some(&plans[0]));
        assert_eq!(cells[0].spec.byzantine, Some(roles[0]));
        assert_eq!(cells[2].spec.byzantine, Some(roles[1]));
        assert_eq!(cells[6].spec.faults.as_ref(), Some(&plans[1]));
        assert_eq!(cells[6].spec.byzantine, Some(roles[0]));
        // An empty axis keeps the base's (absent) plan and serializes
        // exactly as a pre-fault sweep spec did.
        let plain = SweepSpec::new("plain", base);
        let json = serde_json::to_string(&plain).unwrap();
        assert!(
            !json.contains("faults") && !json.contains("byzantine"),
            "{json}"
        );
        let json = serde_json::to_string(&sweep).unwrap();
        let back: SweepSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, sweep);
        assert_eq!(back.enumerate(), sweep.enumerate());
    }

    #[test]
    fn sweep_specs_round_trip_through_serde() {
        let sweep = SweepSpec::new("rt", routing_base())
            .over_n([32, 64])
            .over_c([1.0, 1.5])
            .over_churn([ChurnSpec::fraction(1, 4), ChurnSpec::none()])
            .over_adversaries([AdversarySpec::targeted(1, 5)])
            .rounds(RoundsSpec::MaturityAges(2))
            .seeds(3, 4)
            .max_parallel(2);
        let json = serde_json::to_string(&sweep).unwrap();
        let back: SweepSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, sweep);
        assert_eq!(back.enumerate(), sweep.enumerate());
    }
}
