//! The parallel sweep executor.
//!
//! Cells are run by a pool of workers pulling indices from a shared queue
//! (the work-stealing `rayon::for_each_index` primitive of the vendored
//! shim), so a slow cell never blocks the rest of the grid. Each cell is a
//! pure function of its `ScenarioSpec` and round count — the executor runs
//! `Scenario::from_spec(spec).run(rounds)` and nothing else — so results are
//! bit-identical whether the sweep runs on 1 thread or N, and identical to a
//! standalone run at the same seed.
//!
//! Thread budget, from most to least specific:
//! 1. an explicit [`SweepRunner::threads`] override (the `--threads` flag),
//! 2. the `TSA_THREADS` environment variable,
//! 3. [`std::thread::available_parallelism`],
//!
//! always capped by [`SweepSpec::max_parallel`] and by the number of pending
//! cells.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::thread::ThreadId;
use std::time::Instant;

use serde::{Deserialize, Serialize};
use tsa_obs::{Progress, Reporter};
use tsa_scenario::Scenario;

use crate::shard::{
    append_record, open_shard_for_append, read_shards, usable_checkpoints, CellRecord,
};
use crate::spec::SweepSpec;

/// Runs a [`SweepSpec`] to completion, streaming shards and resuming from
/// previous ones.
#[derive(Clone, Debug)]
pub struct SweepRunner {
    spec: SweepSpec,
    threads_override: Option<usize>,
    shard_path: Option<PathBuf>,
    reporter: Option<Reporter>,
}

/// The completed result of a sweep run.
#[derive(Clone, Debug)]
pub struct SweepRun {
    /// The sweep that ran.
    pub spec: SweepSpec,
    /// One record per cell, sorted by cell index (resumed + freshly run).
    pub records: Vec<CellRecord>,
    /// Cells restored from the shard file instead of being re-run.
    pub resumed: usize,
    /// Cells executed in this run.
    pub executed: usize,
    /// Stale or unparseable shard entries that were ignored.
    pub discarded: usize,
    /// Worker threads the executor actually used.
    pub threads: usize,
    /// Wall-clock timing of every cell executed in this run (resumed cells
    /// have none), in completion order. Observational data for trace export
    /// — machine-dependent, never byte-compared.
    pub cell_timings: Vec<CellTiming>,
}

/// When and where one sweep cell ran: worker track, start offset from the
/// run's epoch and duration, all in microseconds. Feeds the Perfetto
/// export's one-track-per-worker, one-slice-per-cell view.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellTiming {
    /// The cell index within the sweep grid.
    pub cell: u64,
    /// Dense worker index (0-based) of the thread that ran the cell.
    pub worker: u64,
    /// Microseconds from the run's start to the cell's start.
    pub start_us: u64,
    /// The cell's wall-clock duration in microseconds.
    pub dur_us: u64,
    /// The cell's rollup label (axis point, seed, headline numbers).
    pub label: String,
}

impl SweepRunner {
    /// A runner for `spec` with no thread override and no shard file.
    pub fn new(spec: SweepSpec) -> Self {
        SweepRunner {
            spec,
            threads_override: None,
            shard_path: None,
            reporter: None,
        }
    }

    /// Streams progress — a resume summary up front, then one line per
    /// completed cell with an ETA — through `reporter` (which is silent in
    /// quiet mode). Without a reporter the runner stays mute, as before.
    pub fn reporter(mut self, reporter: Reporter) -> Self {
        self.reporter = Some(reporter);
        self
    }

    /// Overrides the worker thread count (still capped by
    /// `SweepSpec::max_parallel`).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads_override = Some(threads.max(1));
        self
    }

    /// Streams completed cells to (and resumes from) the JSONL file at
    /// `path`.
    pub fn shard_path(mut self, path: impl AsRef<Path>) -> Self {
        self.shard_path = Some(path.as_ref().to_path_buf());
        self
    }

    /// The worker thread count the run will use for `pending` runnable cells:
    /// override / `TSA_THREADS` / machine parallelism, capped by
    /// `max_parallel` and `pending`.
    pub fn effective_threads(&self, pending: usize) -> usize {
        let base = self
            .threads_override
            .unwrap_or_else(rayon::current_num_threads);
        base.min(self.spec.max_parallel.unwrap_or(usize::MAX))
            .clamp(1, pending.max(1))
    }

    /// Runs every cell of the sweep (resuming any that are already
    /// checkpointed in the shard file) and returns the complete record set.
    ///
    /// # Panics
    ///
    /// Panics on shard I/O errors — a sweep that cannot checkpoint is treated
    /// as misconfigured rather than silently running without durability.
    pub fn run(&self) -> SweepRun {
        let cells = self.spec.enumerate();

        // Resume: collect usable checkpoints from a previous (possibly
        // killed) run of the same sweep.
        let mut discarded = 0usize;
        let mut done = std::collections::HashMap::new();
        if let Some(path) = &self.shard_path {
            let (records, unparseable) = read_shards(path).expect("shard file is readable");
            let (usable, stale) = usable_checkpoints(records, &cells);
            discarded = unparseable + stale;
            done = usable;
        }

        let pending: Vec<usize> = cells
            .iter()
            .map(|c| c.index)
            .filter(|i| !done.contains_key(i))
            .collect();
        let threads = self.effective_threads(pending.len());

        // One unconditional line up front: how much of the grid a shard
        // file bought us. Before this, a resumed sweep was indistinguishable
        // from a fresh one.
        if let Some(reporter) = &self.reporter {
            reporter.note(&format!(
                "sweep '{}': {} cells — {} reused from shards, {} stale/unparseable discarded, {} to run on {} threads",
                self.spec.name,
                cells.len(),
                done.len(),
                discarded,
                pending.len(),
                threads
            ));
        }
        // Progress exists even without a reporter: the stderr notes need a
        // non-quiet reporter, but the machine-readable sidecar (written
        // whenever a shard path is set) must not.
        let progress = Progress::start(
            self.reporter.unwrap_or_else(Reporter::silent),
            &self.spec.name,
            cells.len(),
            done.len(),
        );
        let sidecar = self.shard_path.as_deref().map(progress_sidecar_path);
        write_progress_sidecar(sidecar.as_deref(), &progress);

        let writer = self
            .shard_path
            .as_ref()
            .map(|path| Mutex::new(open_shard_for_append(path).expect("shard file is writable")));
        let fresh: Mutex<Vec<CellRecord>> = Mutex::new(Vec::with_capacity(pending.len()));

        // Per-cell wall-clock placement for the trace export: worker track
        // indices are assigned densely in order of first appearance.
        let epoch = Instant::now();
        let workers: Mutex<HashMap<ThreadId, u64>> = Mutex::new(HashMap::new());
        let timings: Mutex<Vec<CellTiming>> = Mutex::new(Vec::with_capacity(pending.len()));

        // Sweep workers and the simulator's own parallel compute phase would
        // otherwise multiply into `workers × cores` threads; cap each
        // worker's inner parallelism so the total tracks the machine.
        let inner_cap = (rayon::current_num_threads() / threads).max(1);
        rayon::for_each_index(pending.len(), threads, |slot| {
            let cell = &cells[pending[slot]];
            let cell_started = Instant::now();
            let outcome = rayon::with_thread_cap(inner_cap, || {
                Scenario::from_spec(cell.spec.clone()).run(cell.rounds)
            });
            let dur_us = cell_started.elapsed().as_micros() as u64;
            let record = CellRecord {
                cell: cell.index,
                rounds: cell.rounds,
                outcome,
            };
            let label = cell_rollup(&record);
            // Stream the record out the moment the cell completes, so a
            // killed sweep keeps everything finished so far.
            if let Some(writer) = &writer {
                let mut writer = writer.lock().expect("shard writer lock");
                append_record(&mut *writer, &record).expect("shard record appends");
            }
            {
                let worker = {
                    let mut workers = workers.lock().expect("worker index lock");
                    let next = workers.len() as u64;
                    *workers.entry(std::thread::current().id()).or_insert(next)
                };
                timings
                    .lock()
                    .expect("timing collector lock")
                    .push(CellTiming {
                        cell: cell.index as u64,
                        worker,
                        start_us: (cell_started - epoch).as_micros() as u64,
                        dur_us,
                        label: label.clone(),
                    });
            }
            progress.item_done(&label);
            write_progress_sidecar(sidecar.as_deref(), &progress);
            fresh.lock().expect("record collector lock").push(record);
        });
        // One final snapshot so a resumed-to-complete sweep (zero pending
        // cells) still leaves a done-state sidecar behind.
        write_progress_sidecar(sidecar.as_deref(), &progress);

        let executed = pending.len();
        let resumed = done.len();
        let mut records: Vec<CellRecord> = done.into_values().collect();
        records.append(&mut fresh.into_inner().expect("record collector lock"));
        records.sort_by_key(|r| r.cell);
        let mut cell_timings = timings.into_inner().expect("timing collector lock");
        cell_timings.sort_by_key(|t| (t.start_us, t.cell));
        SweepRun {
            spec: self.spec.clone(),
            records,
            resumed,
            executed,
            discarded,
            threads,
            cell_timings,
        }
    }
}

/// Where a shard file's progress sidecar lives: `<exp>.<sweep>.jsonl` →
/// `<exp>.<sweep>.progress.json`, next to the shards so the dashboard finds
/// both in one directory.
pub fn progress_sidecar_path(shard_path: &Path) -> PathBuf {
    shard_path.with_extension("progress.json")
}

/// Writes the progress snapshot atomically (tmp + rename), so a dashboard
/// poll never reads a torn document. Failures are swallowed: the sidecar is
/// observational and must never fail the sweep it observes.
fn write_progress_sidecar(path: Option<&Path>, progress: &Progress) {
    let Some(path) = path else { return };
    let Ok(json) = serde_json::to_string(&progress.snapshot()) else {
        return;
    };
    // Per-thread tmp names keep concurrent workers from truncating each
    // other's in-flight writes; the rename itself is atomic.
    let tmp = path.with_extension(format!(
        "progress.json.tmp-{:?}",
        std::thread::current().id()
    ));
    if std::fs::write(&tmp, json).is_ok() {
        let _ = std::fs::rename(&tmp, path);
    }
}

/// The one-line per-cell rollup the progress reporter prints: the cell's
/// axis point, its seed, and the headline numbers of its outcome kind.
fn cell_rollup(record: &CellRecord) -> String {
    let spec = &record.outcome.spec;
    let head = format!(
        "cell {} [{} seed={}]",
        record.cell,
        spec.axis_label(),
        spec.seed
    );
    if let Some(m) = &record.outcome.maintenance {
        return format!(
            "{head} routable={} sent={} peak={}",
            m.report.is_routable(),
            m.metrics_summary.total_messages_sent,
            m.metrics_summary.peak_congestion
        );
    }
    if let Some(b) = &record.outcome.baseline {
        return format!("{head} budget={}", b.budget);
    }
    if let Some(r) = &record.outcome.routing {
        return format!("{head} delivered={}/{}", r.delivered, r.total);
    }
    if let Some(s) = &record.outcome.sampling {
        return format!("{head} discard_rate={:.3}", s.discard_rate);
    }
    head
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SweepSpec;
    use tsa_scenario::{ScenarioKind, ScenarioSpec};

    fn small_sampling_sweep(name: &str) -> SweepSpec {
        let mut base = ScenarioSpec::new(ScenarioKind::Sampling, 32);
        base.attempts = 400;
        SweepSpec::new(name, base).over_n([32, 48]).seeds(5, 2)
    }

    #[test]
    fn thread_budget_resolution_order() {
        let runner = SweepRunner::new(small_sampling_sweep("t").max_parallel(3));
        // Override wins but is capped by max_parallel and pending cells.
        assert_eq!(runner.clone().threads(8).effective_threads(100), 3);
        assert_eq!(runner.clone().threads(2).effective_threads(100), 2);
        assert_eq!(runner.clone().threads(8).effective_threads(1), 1);
        assert_eq!(runner.clone().threads(8).effective_threads(0), 1);
        // Without max_parallel the override passes through.
        let unbounded = SweepRunner::new(small_sampling_sweep("u"));
        assert_eq!(unbounded.threads(8).effective_threads(100), 8);
    }

    #[test]
    fn a_reporter_never_perturbs_the_records() {
        let mute = SweepRunner::new(small_sampling_sweep("rep"))
            .threads(2)
            .run();
        // A silent reporter exercises the progress plumbing end to end
        // without polluting test output.
        let reported = SweepRunner::new(small_sampling_sweep("rep"))
            .threads(2)
            .reporter(Reporter::silent())
            .run();
        assert_eq!(
            serde_json::to_string(&mute.records).unwrap(),
            serde_json::to_string(&reported.records).unwrap(),
            "progress reporting must be observational only"
        );
    }

    #[test]
    fn runs_without_a_shard_file() {
        let run = SweepRunner::new(small_sampling_sweep("noshard"))
            .threads(2)
            .run();
        assert_eq!(run.records.len(), 4);
        assert_eq!(run.executed, 4);
        assert_eq!(run.resumed, 0);
        assert_eq!(run.threads, 2);
        for (i, r) in run.records.iter().enumerate() {
            assert_eq!(r.cell, i);
            assert!(r.outcome.sampling.is_some());
        }
        // Every executed cell leaves a timing with its rollup label, on a
        // worker track within the thread budget.
        assert_eq!(run.cell_timings.len(), 4);
        for t in &run.cell_timings {
            assert!(t.worker < 2, "worker {} outside budget", t.worker);
            assert!(t.label.starts_with("cell "));
        }
    }

    #[test]
    fn progress_sidecar_tracks_the_sweep_even_under_quiet() {
        let dir = std::env::temp_dir().join("tsa-sweep-sidecar-test");
        std::fs::create_dir_all(&dir).unwrap();
        let shards = dir.join("exp.sidecar.jsonl");
        let sidecar = progress_sidecar_path(&shards);
        let _ = std::fs::remove_file(&shards);
        let _ = std::fs::remove_file(&sidecar);
        assert_eq!(
            sidecar.file_name().unwrap().to_str().unwrap(),
            "exp.sidecar.progress.json"
        );

        // No reporter at all: the sidecar must still appear.
        let run = SweepRunner::new(small_sampling_sweep("sidecar"))
            .threads(2)
            .shard_path(&shards)
            .run();
        assert_eq!(run.executed, 4);
        let text = std::fs::read_to_string(&sidecar).unwrap();
        let snap: tsa_obs::ProgressSnapshot = serde_json::from_str(&text).unwrap();
        assert_eq!(snap.label, "sidecar");
        assert_eq!((snap.done, snap.total), (4, 4));
        assert_eq!(snap.recent.len(), 4);

        // A fully resumed re-run rewrites a done-state sidecar.
        std::fs::remove_file(&sidecar).unwrap();
        let rerun = SweepRunner::new(small_sampling_sweep("sidecar"))
            .threads(2)
            .shard_path(&shards)
            .run();
        assert_eq!(rerun.resumed, 4);
        assert!(
            rerun.cell_timings.is_empty(),
            "resumed cells have no timings"
        );
        let text = std::fs::read_to_string(&sidecar).unwrap();
        let snap: tsa_obs::ProgressSnapshot = serde_json::from_str(&text).unwrap();
        assert_eq!((snap.done, snap.total), (4, 4));
        std::fs::remove_file(&shards).unwrap();
        std::fs::remove_file(&sidecar).unwrap();
    }
}
