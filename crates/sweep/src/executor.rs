//! The parallel sweep executor.
//!
//! Cells are run by a pool of workers pulling indices from a shared queue
//! (the work-stealing `rayon::for_each_index` primitive of the vendored
//! shim), so a slow cell never blocks the rest of the grid. Each cell is a
//! pure function of its `ScenarioSpec` and round count — the executor runs
//! `Scenario::from_spec(spec).run(rounds)` and nothing else — so results are
//! bit-identical whether the sweep runs on 1 thread or N, and identical to a
//! standalone run at the same seed.
//!
//! Thread budget, from most to least specific:
//! 1. an explicit [`SweepRunner::threads`] override (the `--threads` flag),
//! 2. the `TSA_THREADS` environment variable,
//! 3. [`std::thread::available_parallelism`],
//!
//! always capped by [`SweepSpec::max_parallel`] and by the number of pending
//! cells.

use std::path::{Path, PathBuf};
use std::sync::Mutex;

use tsa_obs::{Progress, Reporter};
use tsa_scenario::Scenario;

use crate::shard::{
    append_record, open_shard_for_append, read_shards, usable_checkpoints, CellRecord,
};
use crate::spec::SweepSpec;

/// Runs a [`SweepSpec`] to completion, streaming shards and resuming from
/// previous ones.
#[derive(Clone, Debug)]
pub struct SweepRunner {
    spec: SweepSpec,
    threads_override: Option<usize>,
    shard_path: Option<PathBuf>,
    reporter: Option<Reporter>,
}

/// The completed result of a sweep run.
#[derive(Clone, Debug)]
pub struct SweepRun {
    /// The sweep that ran.
    pub spec: SweepSpec,
    /// One record per cell, sorted by cell index (resumed + freshly run).
    pub records: Vec<CellRecord>,
    /// Cells restored from the shard file instead of being re-run.
    pub resumed: usize,
    /// Cells executed in this run.
    pub executed: usize,
    /// Stale or unparseable shard entries that were ignored.
    pub discarded: usize,
    /// Worker threads the executor actually used.
    pub threads: usize,
}

impl SweepRunner {
    /// A runner for `spec` with no thread override and no shard file.
    pub fn new(spec: SweepSpec) -> Self {
        SweepRunner {
            spec,
            threads_override: None,
            shard_path: None,
            reporter: None,
        }
    }

    /// Streams progress — a resume summary up front, then one line per
    /// completed cell with an ETA — through `reporter` (which is silent in
    /// quiet mode). Without a reporter the runner stays mute, as before.
    pub fn reporter(mut self, reporter: Reporter) -> Self {
        self.reporter = Some(reporter);
        self
    }

    /// Overrides the worker thread count (still capped by
    /// `SweepSpec::max_parallel`).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads_override = Some(threads.max(1));
        self
    }

    /// Streams completed cells to (and resumes from) the JSONL file at
    /// `path`.
    pub fn shard_path(mut self, path: impl AsRef<Path>) -> Self {
        self.shard_path = Some(path.as_ref().to_path_buf());
        self
    }

    /// The worker thread count the run will use for `pending` runnable cells:
    /// override / `TSA_THREADS` / machine parallelism, capped by
    /// `max_parallel` and `pending`.
    pub fn effective_threads(&self, pending: usize) -> usize {
        let base = self
            .threads_override
            .unwrap_or_else(rayon::current_num_threads);
        base.min(self.spec.max_parallel.unwrap_or(usize::MAX))
            .clamp(1, pending.max(1))
    }

    /// Runs every cell of the sweep (resuming any that are already
    /// checkpointed in the shard file) and returns the complete record set.
    ///
    /// # Panics
    ///
    /// Panics on shard I/O errors — a sweep that cannot checkpoint is treated
    /// as misconfigured rather than silently running without durability.
    pub fn run(&self) -> SweepRun {
        let cells = self.spec.enumerate();

        // Resume: collect usable checkpoints from a previous (possibly
        // killed) run of the same sweep.
        let mut discarded = 0usize;
        let mut done = std::collections::HashMap::new();
        if let Some(path) = &self.shard_path {
            let (records, unparseable) = read_shards(path).expect("shard file is readable");
            let (usable, stale) = usable_checkpoints(records, &cells);
            discarded = unparseable + stale;
            done = usable;
        }

        let pending: Vec<usize> = cells
            .iter()
            .map(|c| c.index)
            .filter(|i| !done.contains_key(i))
            .collect();
        let threads = self.effective_threads(pending.len());

        // One unconditional line up front: how much of the grid a shard
        // file bought us. Before this, a resumed sweep was indistinguishable
        // from a fresh one.
        if let Some(reporter) = &self.reporter {
            reporter.note(&format!(
                "sweep '{}': {} cells — {} reused from shards, {} stale/unparseable discarded, {} to run on {} threads",
                self.spec.name,
                cells.len(),
                done.len(),
                discarded,
                pending.len(),
                threads
            ));
        }
        let progress = self
            .reporter
            .map(|r| Progress::start(r, &self.spec.name, cells.len(), done.len()));

        let writer = self
            .shard_path
            .as_ref()
            .map(|path| Mutex::new(open_shard_for_append(path).expect("shard file is writable")));
        let fresh: Mutex<Vec<CellRecord>> = Mutex::new(Vec::with_capacity(pending.len()));

        // Sweep workers and the simulator's own parallel compute phase would
        // otherwise multiply into `workers × cores` threads; cap each
        // worker's inner parallelism so the total tracks the machine.
        let inner_cap = (rayon::current_num_threads() / threads).max(1);
        rayon::for_each_index(pending.len(), threads, |slot| {
            let cell = &cells[pending[slot]];
            let outcome = rayon::with_thread_cap(inner_cap, || {
                Scenario::from_spec(cell.spec.clone()).run(cell.rounds)
            });
            let record = CellRecord {
                cell: cell.index,
                rounds: cell.rounds,
                outcome,
            };
            // Stream the record out the moment the cell completes, so a
            // killed sweep keeps everything finished so far.
            if let Some(writer) = &writer {
                let mut writer = writer.lock().expect("shard writer lock");
                append_record(&mut *writer, &record).expect("shard record appends");
            }
            if let Some(progress) = &progress {
                progress.item_done(&cell_rollup(&record));
            }
            fresh.lock().expect("record collector lock").push(record);
        });

        let executed = pending.len();
        let resumed = done.len();
        let mut records: Vec<CellRecord> = done.into_values().collect();
        records.append(&mut fresh.into_inner().expect("record collector lock"));
        records.sort_by_key(|r| r.cell);
        SweepRun {
            spec: self.spec.clone(),
            records,
            resumed,
            executed,
            discarded,
            threads,
        }
    }
}

/// The one-line per-cell rollup the progress reporter prints: the cell's
/// axis point, its seed, and the headline numbers of its outcome kind.
fn cell_rollup(record: &CellRecord) -> String {
    let spec = &record.outcome.spec;
    let head = format!(
        "cell {} [{} seed={}]",
        record.cell,
        spec.axis_label(),
        spec.seed
    );
    if let Some(m) = &record.outcome.maintenance {
        return format!(
            "{head} routable={} sent={} peak={}",
            m.report.is_routable(),
            m.metrics_summary.total_messages_sent,
            m.metrics_summary.peak_congestion
        );
    }
    if let Some(b) = &record.outcome.baseline {
        return format!("{head} budget={}", b.budget);
    }
    if let Some(r) = &record.outcome.routing {
        return format!("{head} delivered={}/{}", r.delivered, r.total);
    }
    if let Some(s) = &record.outcome.sampling {
        return format!("{head} discard_rate={:.3}", s.discard_rate);
    }
    head
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SweepSpec;
    use tsa_scenario::{ScenarioKind, ScenarioSpec};

    fn small_sampling_sweep(name: &str) -> SweepSpec {
        let mut base = ScenarioSpec::new(ScenarioKind::Sampling, 32);
        base.attempts = 400;
        SweepSpec::new(name, base).over_n([32, 48]).seeds(5, 2)
    }

    #[test]
    fn thread_budget_resolution_order() {
        let runner = SweepRunner::new(small_sampling_sweep("t").max_parallel(3));
        // Override wins but is capped by max_parallel and pending cells.
        assert_eq!(runner.clone().threads(8).effective_threads(100), 3);
        assert_eq!(runner.clone().threads(2).effective_threads(100), 2);
        assert_eq!(runner.clone().threads(8).effective_threads(1), 1);
        assert_eq!(runner.clone().threads(8).effective_threads(0), 1);
        // Without max_parallel the override passes through.
        let unbounded = SweepRunner::new(small_sampling_sweep("u"));
        assert_eq!(unbounded.threads(8).effective_threads(100), 8);
    }

    #[test]
    fn a_reporter_never_perturbs_the_records() {
        let mute = SweepRunner::new(small_sampling_sweep("rep"))
            .threads(2)
            .run();
        // A silent reporter exercises the progress plumbing end to end
        // without polluting test output.
        let reported = SweepRunner::new(small_sampling_sweep("rep"))
            .threads(2)
            .reporter(Reporter::silent())
            .run();
        assert_eq!(
            serde_json::to_string(&mute.records).unwrap(),
            serde_json::to_string(&reported.records).unwrap(),
            "progress reporting must be observational only"
        );
    }

    #[test]
    fn runs_without_a_shard_file() {
        let run = SweepRunner::new(small_sampling_sweep("noshard"))
            .threads(2)
            .run();
        assert_eq!(run.records.len(), 4);
        assert_eq!(run.executed, 4);
        assert_eq!(run.resumed, 0);
        assert_eq!(run.threads, 2);
        for (i, r) in run.records.iter().enumerate() {
            assert_eq!(r.cell, i);
            assert!(r.outcome.sampling.is_some());
        }
    }
}
