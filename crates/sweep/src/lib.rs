//! # tsa-sweep — declarative parameter sweeps over the `Scenario` API
//!
//! The paper's claims are all *sweeps*: grids over `n`, `c`, churn rate,
//! adversary kind and seeds. This crate turns the
//! [`Scenario`](tsa_scenario::Scenario) API into an orchestration engine:
//!
//! * a serde-round-trippable [`SweepSpec`] enumerates a cartesian grid of
//!   scenario axes × a seed range into concrete
//!   [`ScenarioSpec`](tsa_scenario::ScenarioSpec)s ([`SweepSpec::enumerate`]);
//! * a parallel [`SweepRunner`] executes cells on a work-stealing pool
//!   (bounded by `TSA_THREADS` / [`SweepSpec::max_parallel`]), each cell
//!   bit-identical to a standalone `Scenario::run` at the same seed;
//! * completed cells stream to a JSONL shard file ([`CellRecord`] per line),
//!   so a killed sweep loses nothing and re-running *resumes* from the
//!   shards;
//! * [`aggregate()`] folds cell outcomes into per-axis summary tables with
//!   seed-replicate confidence intervals.
//!
//! ```
//! use tsa_scenario::{ScenarioKind, ScenarioSpec};
//! use tsa_sweep::{aggregate, SweepRunner, SweepSpec};
//!
//! let mut base = ScenarioSpec::new(ScenarioKind::Sampling, 32);
//! base.attempts = 500;
//! let sweep = SweepSpec::new("uniformity", base)
//!     .over_n([32, 64])
//!     .seeds(1, 3); // 2 × 3 = 6 cells
//! let run = SweepRunner::new(sweep).threads(2).run();
//! let summary = aggregate("uniformity", &run.records);
//! assert_eq!(summary.groups.len(), 2);
//! println!("{}", summary.to_table().to_markdown());
//! ```

#![deny(missing_docs)]

pub mod aggregate;
pub mod executor;
pub mod shard;
pub mod spec;

pub use aggregate::{aggregate, outcome_metrics, GroupSummary, SweepAggregate};
pub use executor::{progress_sidecar_path, CellTiming, SweepRun, SweepRunner};
pub use shard::{read_shards, CellRecord};
pub use spec::{RoundsSpec, SeedRange, SweepCell, SweepSpec};
