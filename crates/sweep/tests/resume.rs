//! The acceptance sweep: ≥ 24 grid cells run in parallel, stream JSONL
//! shards, survive a kill, and resume to an identical aggregate.

use tsa_scenario::{ScenarioKind, ScenarioSpec};
use tsa_sweep::{aggregate, read_shards, SweepRunner, SweepSpec};

fn shard_file(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "tsa-sweep-resume-{}-{tag}.jsonl",
        std::process::id()
    ))
}

/// 2 n × 2 c × 2 k × 3 seeds = 24 cells of routing workloads.
fn acceptance_sweep() -> SweepSpec {
    let mut base = ScenarioSpec::new(ScenarioKind::Routing, 48);
    base.holder_failure = 0.25;
    base.replication = Some(2);
    SweepSpec::new("acceptance", base)
        .over_n([48, 64])
        .over_c([1.0, 1.5])
        .over_messages_per_node([1, 2])
        .seeds(41, 3)
}

#[test]
fn killed_sweep_resumes_from_shards_to_an_identical_aggregate() {
    let sweep = acceptance_sweep();
    assert!(sweep.cell_count() >= 24, "acceptance grid has ≥ 24 cells");

    // Reference: the full sweep in one go, in parallel.
    let reference_path = shard_file("reference");
    let _ = std::fs::remove_file(&reference_path);
    let reference = SweepRunner::new(sweep.clone())
        .threads(2)
        .shard_path(&reference_path)
        .run();
    assert_eq!(reference.threads, 2, "the sweep runs in parallel");
    assert_eq!(reference.executed, sweep.cell_count());
    let reference_aggregate = aggregate(&sweep.name, &reference.records);

    // "Kill" a run partway: keep only a prefix of the streamed shard lines
    // (including a truncated final line, as a real kill mid-write leaves).
    let killed_path = shard_file("killed");
    let full = std::fs::read_to_string(&reference_path).unwrap();
    let lines: Vec<&str> = full.lines().collect();
    let keep = lines.len() / 3;
    let mut partial = lines[..keep].join("\n");
    partial.push('\n');
    partial.push_str(&lines[keep][..lines[keep].len() / 2]);
    std::fs::write(&killed_path, &partial).unwrap();

    // Resume against the partial shard file.
    let resumed = SweepRunner::new(sweep.clone())
        .threads(2)
        .shard_path(&killed_path)
        .run();
    assert_eq!(resumed.resumed, keep, "the intact prefix is reused");
    assert_eq!(resumed.executed, sweep.cell_count() - keep);
    assert_eq!(resumed.discarded, 1, "the truncated tail is discarded");
    assert_eq!(resumed.records.len(), sweep.cell_count());

    // The resumed aggregate is byte-identical to the uninterrupted one.
    let resumed_aggregate = aggregate(&sweep.name, &resumed.records);
    assert_eq!(resumed_aggregate.to_json(), reference_aggregate.to_json());

    // And the shard file now checkpoints the complete sweep: a further run
    // resumes everything and executes nothing.
    let (records, _) = read_shards(&killed_path).unwrap();
    assert_eq!(records.len(), sweep.cell_count());
    let noop = SweepRunner::new(sweep.clone())
        .threads(2)
        .shard_path(&killed_path)
        .run();
    assert_eq!(noop.executed, 0);
    assert_eq!(noop.resumed, sweep.cell_count());
    assert_eq!(
        aggregate(&sweep.name, &noop.records).to_json(),
        reference_aggregate.to_json()
    );

    std::fs::remove_file(&reference_path).unwrap();
    std::fs::remove_file(&killed_path).unwrap();
}

#[test]
fn tsa_threads_env_var_bounds_the_default_thread_budget() {
    // This test owns the TSA_THREADS variable: nothing else in this binary
    // reads it (every other runner passes an explicit override).
    let sweep = acceptance_sweep();
    std::env::set_var("TSA_THREADS", "3");
    assert_eq!(rayon::current_num_threads(), 3);
    assert_eq!(SweepRunner::new(sweep.clone()).effective_threads(100), 3);
    // max_parallel still caps the env-provided budget.
    assert_eq!(
        SweepRunner::new(sweep.clone().max_parallel(2)).effective_threads(100),
        2
    );
    std::env::set_var("TSA_THREADS", "not a number");
    let machine = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    assert_eq!(rayon::current_num_threads(), machine, "garbage is ignored");
    std::env::remove_var("TSA_THREADS");
    assert_eq!(rayon::current_num_threads(), machine);
}
