//! The sweep engine's central guarantee: a sweep is nothing but a set of
//! standalone `Scenario::run` calls.
//!
//! * Running the same sweep with 1 thread and with N threads produces
//!   byte-identical sorted JSONL shards (a proptest over randomized grids).
//! * Every cell's outcome is byte-identical to the standalone
//!   `Scenario::from_spec(spec).run(rounds)` at the same seed.

use proptest::prelude::*;
use tsa_scenario::{Scenario, ScenarioKind, ScenarioSpec};
use tsa_sweep::{RoundsSpec, SweepRunner, SweepSpec};

fn shard_file(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("tsa-sweep-det-{}-{tag}.jsonl", std::process::id()))
}

fn sorted_shard_lines(path: &std::path::Path) -> Vec<String> {
    let mut lines: Vec<String> = std::fs::read_to_string(path)
        .unwrap()
        .lines()
        .map(|l| l.to_string())
        .collect();
    lines.sort();
    lines
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn shards_are_byte_identical_across_thread_counts(
        case in 0u64..1_000_000,
        n_axis_len in 1usize..3,
        k_axis_len in 1usize..3,
        seed_count in 1u64..3,
        threads in 2usize..5,
    ) {
        let mut base = ScenarioSpec::new(ScenarioKind::Routing, 32);
        base.holder_failure = 0.25;
        base.replication = Some(2);
        let sweep = SweepSpec::new("det", base)
            .over_n((0..n_axis_len).map(|i| 32 + 16 * i).collect::<Vec<_>>())
            .over_messages_per_node((0..k_axis_len).map(|i| 1 + i).collect::<Vec<_>>())
            .seeds(case, seed_count);

        let serial_path = shard_file(&format!("{case}-serial"));
        let parallel_path = shard_file(&format!("{case}-parallel"));
        let _ = std::fs::remove_file(&serial_path);
        let _ = std::fs::remove_file(&parallel_path);

        let serial = SweepRunner::new(sweep.clone())
            .threads(1)
            .shard_path(&serial_path)
            .run();
        let parallel = SweepRunner::new(sweep.clone())
            .threads(threads)
            .shard_path(&parallel_path)
            .run();
        prop_assert_eq!(serial.records.len(), sweep.cell_count());
        prop_assert_eq!(parallel.records.len(), sweep.cell_count());

        // Byte-identical sorted shards, regardless of completion order.
        prop_assert_eq!(
            sorted_shard_lines(&serial_path),
            sorted_shard_lines(&parallel_path)
        );

        // Every cell equals the standalone run at the same seed, byte for
        // byte.
        for (cell, record) in sweep.enumerate().iter().zip(&parallel.records) {
            let standalone = Scenario::from_spec(cell.spec.clone()).run(cell.rounds);
            prop_assert_eq!(
                serde_json::to_string(&record.outcome).unwrap(),
                serde_json::to_string(&standalone).unwrap()
            );
        }

        std::fs::remove_file(&serial_path).unwrap();
        std::fs::remove_file(&parallel_path).unwrap();
    }
}

#[test]
fn maintained_runs_are_byte_identical_across_compute_thread_budgets() {
    // The engine's compute phase runs in parallel (work stolen at node
    // granularity under the TSA_THREADS / with_thread_cap budget); per-node
    // RNG streams depend only on (seed, node, round), so the budget must
    // never change a single output bit. Pin the phase at 1, 2 and 4 worker
    // threads and require byte-identical serialized outcomes.
    let mut base = ScenarioSpec::new(ScenarioKind::MaintainedLds, 48);
    base.c = Some(1.5);
    base.tau = Some(4);
    base.replication = Some(2);
    base.churn = tsa_scenario::ChurnSpec::fraction(1, 4);
    base.adversary = tsa_scenario::AdversarySpec::random(1, 5);
    let run_with_cap = |cap: usize| {
        rayon::with_thread_cap(cap, || {
            serde_json::to_string(&Scenario::from_spec(base.clone().with_seed(31)).run(8)).unwrap()
        })
    };
    let single = run_with_cap(1);
    for cap in [2usize, 4] {
        assert_eq!(
            run_with_cap(cap),
            single,
            "outcome diverged with the compute phase pinned at {cap} threads"
        );
    }
}

#[test]
fn maintained_cells_match_standalone_runs_byte_for_byte() {
    // The protocol-in-simulator kind, with churn and a real adversary — the
    // expensive case, pinned deterministically (2 cells).
    let mut base = ScenarioSpec::new(ScenarioKind::MaintainedLds, 48);
    base.c = Some(1.5);
    base.tau = Some(4);
    base.replication = Some(2);
    base.churn = tsa_scenario::ChurnSpec::fraction(1, 4);
    base.adversary = tsa_scenario::AdversarySpec::targeted(1, 17);
    let sweep = SweepSpec::new("maintained", base)
        .rounds(RoundsSpec::MaturityAges(1))
        .seeds(23, 2);

    let run = SweepRunner::new(sweep.clone()).threads(2).run();
    assert_eq!(run.records.len(), 2);
    for (cell, record) in sweep.enumerate().iter().zip(&run.records) {
        let standalone = Scenario::from_spec(cell.spec.clone()).run(cell.rounds);
        assert_eq!(
            serde_json::to_string(&record.outcome).unwrap(),
            serde_json::to_string(&standalone).unwrap(),
            "maintained cell at seed {} must equal the standalone run",
            cell.spec.seed
        );
    }
}
