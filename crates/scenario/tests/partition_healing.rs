//! The healing property of partial partitions, pinned as regression tests.
//!
//! The question ISSUE 5 asks — does the overlay heal a finite partition
//! within O(1) rebuild cadences? — turns out to have a *three-regime* answer
//! at the experiment parameters (`exp_partition` measures the full grid;
//! the per-round trajectories below are deterministic and identical across
//! seeds):
//!
//! * a partition **shorter than the protocol's two-steps-ahead memory**
//!   (≤ 4 rounds at n = 48, even for a *complete* bridge cut) is absorbed
//!   wholesale — routability is not lost at the heal, so the observed
//!   reconnection bound is **0 rounds**, inside the two-cadence prediction
//!   of `2·2 + 1` rounds. The partition does leave a delayed **echo**: one
//!   maturity age later the neighbor lists built from partition-era samples
//!   become current and routability dips for a few rounds before recovering
//!   completely;
//! * around 6–8 rounds the overlay sits on the **cliff edge**: routability
//!   oscillates with the epoch cadence and participation is scarred;
//! * a partition that clearly outlives the protocol memory (12 rounds)
//!   falls off the cliff: the epochs current after the heal were built
//!   entirely over a severed bridge, next-epoch construction routes over
//!   the broken current overlay, and the protocol — which has no
//!   retransmission — never recovers. This is the **documented
//!   counterexample** to O(1) healing; see the PARTITION section of
//!   EXPERIMENTS.md and the loss-recovery item in ROADMAP.md.
//!
//! All three regimes are pinned below (fixed seeds, deterministic engine),
//! so any protocol change that moves the cliff — in either direction —
//! shows up as a test failure rather than a silent drift of the headline
//! result.

use tsa_core::{AsyncMaintenanceHarness, MaintenanceParams};
use tsa_scenario::{
    AdversarySpec, ChurnSpec, LatencyModel, NetModel, PartitionSchedule, RegionAssign, Scenario,
    Topology,
};
use tsa_sim::NullAdversary;

fn params() -> MaintenanceParams {
    MaintenanceParams::new(48)
        .with_c(1.5)
        .with_tau(4)
        .with_replication(2)
}

/// Sub-round intra-region model: provably the synchronous engine.
fn intra() -> NetModel {
    NetModel::new(LatencyModel::constant(100))
}

/// A complete bridge cut: every cross-region message is lost.
fn cut() -> NetModel {
    NetModel {
        latency: LatencyModel::constant(1000),
        jitter: 0,
        loss: 1.0,
    }
}

/// Bootstraps a harness whose bridge is cut for `duration` rounds after
/// bootstrap; the partition window has just ended when this returns.
fn cut_partition(duration: u64, seed: u64) -> AsyncMaintenanceHarness<NullAdversary> {
    let params = params();
    let boot = params.bootstrap_rounds();
    let topology = Topology::regions_with_schedule(
        RegionAssign::halves(24),
        intra(),
        cut(),
        PartitionSchedule::window(boot, boot + duration),
    );
    let mut harness = AsyncMaintenanceHarness::assemble_with_topology(
        params,
        NullAdversary,
        seed,
        params.paper_churn_rules(),
        params.paper_lateness(),
        topology,
    );
    harness.run_bootstrap();
    harness.run(duration);
    harness
}

#[test]
fn short_partitions_are_absorbed_then_echo_then_heal() {
    // Observed bound, pinned: for complete cuts of 2 and 4 rounds the
    // overlay is routable at the heal boundary itself (reconnection takes 0
    // rounds, within the two-cadence prediction of 2·2 + 1 = 5) and stays
    // routable through the prediction window; the partition-era samples
    // echo as a short dip within the following maturity age; after it the
    // overlay is fully healed and the halves talk again.
    let maturity = params().maturity_age();
    for duration in [2u64, 4] {
        for seed in [41u64, 42] {
            let mut harness = cut_partition(duration, seed);
            assert!(
                harness.report().is_routable(),
                "duration {duration}, seed {seed}: routability lost at the heal: {:?}",
                harness.report()
            );
            assert!(harness.cross_region_edges() > 0);
            // Routable through the whole two-cadence prediction window.
            for offset in 1..=(2 * 2 + 1) {
                harness.step();
                assert!(
                    harness.report().is_routable(),
                    "duration {duration}, seed {seed}: dip inside the prediction \
                     window at heal + {offset}"
                );
            }
            // The delayed echo: partition-era samples surface as a
            // non-routable dip somewhere in the following maturity age...
            let mut echoed = false;
            for _ in (2 * 2 + 1)..maturity {
                harness.step();
                echoed |= !harness.report().is_routable();
            }
            assert!(
                echoed,
                "duration {duration}, seed {seed}: the maturity-age echo vanished — \
                 a protocol improvement? update EXPERIMENTS.md (PARTITION) and this pin"
            );
            // ... and after it the overlay is fully healed.
            harness.run(6);
            let settled = harness.report();
            assert!(
                settled.is_routable() && settled.participation_rate >= 0.97,
                "duration {duration}, seed {seed}: scar after the echo: {settled:?}"
            );
            assert!(harness.cross_region_edges() > 0, "halves talk again");
        }
    }
}

#[test]
fn six_round_partitions_sit_on_the_cliff_edge() {
    // The transition regime, pinned loosely: after a 6-round cut the
    // overlay is neither cleanly healed (participation stays scarred below
    // 0.9 one maturity age after the heal) nor fully collapsed (the giant
    // component never disappears).
    let mut harness = cut_partition(6, 41);
    let mut best_component = 0.0f64;
    let mut worst_participation = 1.0f64;
    for _ in 0..(params().maturity_age() + 6) {
        harness.step();
        let report = harness.report();
        best_component = best_component.max(report.largest_component_fraction);
        worst_participation = worst_participation.min(report.participation_rate);
    }
    let end = harness.report();
    assert!(
        end.participation_rate < 0.9,
        "the cliff edge moved: a 6-round cut now heals cleanly ({end:?}) — \
         update EXPERIMENTS.md (PARTITION) and this pin"
    );
    assert!(best_component > 0.5, "never fully collapsed either");
    assert!(worst_participation < 0.7, "the scar is real");
}

#[test]
fn long_partitions_fall_off_the_healing_cliff() {
    // The documented counterexample, pinned: a 12-round complete cut
    // outlives the protocol memory; the overlay collapses and does not
    // recover within two full maturity ages after the heal — there is no
    // retransmission path back.
    let mut harness = cut_partition(12, 41);
    harness.run(2 * params().maturity_age());
    let report = harness.report();
    assert!(
        !report.is_routable(),
        "the healing cliff moved: a 12-round cut now recovers ({report:?}) — \
         update EXPERIMENTS.md (PARTITION) and this pin"
    );
}

#[test]
fn healing_under_churn_within_one_cadence_pair() {
    // The scenario/sweep-level positive pin (mirrors the `healing` sweep of
    // exp_partition): a 2-round severe-bridge partition under n/4 random
    // churn still ends routable after two maturity ages.
    let boot = params().bootstrap_rounds();
    let severe = NetModel {
        latency: LatencyModel::constant(2500),
        jitter: 0,
        loss: 0.5,
    };
    let outcome = Scenario::maintained_lds(48)
        .with_c(1.5)
        .with_tau(4)
        .with_replication(2)
        .churn(ChurnSpec::fraction(1, 4))
        .adversary(AdversarySpec::random(1, 223))
        .seed(103)
        .topology(Topology::regions_with_schedule(
            RegionAssign::halves(24),
            intra(),
            severe,
            PartitionSchedule::window(boot, boot + 2),
        ))
        .run(2 * params().maturity_age());
    assert!(
        outcome.is_routable(),
        "a 2-round partition under churn must heal: {:?}",
        outcome.maintenance.map(|m| m.report)
    );
}
