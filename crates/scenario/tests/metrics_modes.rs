//! The metrics-mode bridge, pinned by property tests: a
//! [`MetricsMode::Streaming`] run keeps no per-round `MetricsHistory` rows,
//! yet its O(1) running accumulators must fold to the **exact**
//! [`MetricsSummary`] of a [`MetricsMode::Full`] run — same totals, same
//! extrema, same means — across seeds, adversaries and both execution
//! engines. Any drift between the accumulator fold and the row fold shows
//! up here as a digest diff.

use proptest::{prop_assert, prop_assert_eq, proptest, ProptestConfig};
use tsa_scenario::{AdversarySpec, ChurnSpec, ExecutionModel, LatencyModel, MetricsMode, Scenario};

/// The maintained scenario the bridge is pinned over.
fn base(seed: u64, adv: AdversarySpec, execution: ExecutionModel) -> Scenario {
    Scenario::maintained_lds(32)
        .with_c(1.5)
        .with_tau(3)
        .with_replication(2)
        .churn(ChurnSpec::fraction(1, 4))
        .adversary(adv)
        .execution(execution)
        .seed(seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn streaming_folds_to_the_full_digest(
        seed in 0u64..1_000_000,
        adv in 0u8..3,
        asynchronous in 0u8..2,
    ) {
        let adversary = match adv {
            0 => AdversarySpec::null(),
            1 => AdversarySpec::random(1, seed),
            _ => AdversarySpec::targeted(1, seed),
        };
        let execution = if asynchronous == 1 {
            // Super-round delays: messages genuinely straddle boundaries,
            // so the event engine's accumulators see its own trace.
            ExecutionModel::asynchronous(LatencyModel::uniform(200, 1800))
        } else {
            ExecutionModel::Rounds
        };

        let full = base(seed, adversary, execution.clone()).run(6);
        let streaming = base(seed, adversary, execution)
            .metrics_mode(MetricsMode::Streaming)
            .run(6);

        let fm = full.maintenance.expect("maintained outcome");
        let sm = streaming.maintenance.expect("maintained outcome");
        prop_assert_eq!(fm.metrics_summary, sm.metrics_summary);
        // Streaming is streaming: the rows really are gone, and the full
        // run really kept them.
        prop_assert!(fm.metrics.is_some());
        prop_assert!(sm.metrics.is_none());
    }
}
