//! The equivalence bridge between the two execution engines, pinned by
//! property tests: `ExecutionModel::Async` with zero latency, zero jitter,
//! zero loss and round-boundary delivery reproduces the round engine's
//! `ScenarioOutcome` **byte-identically** across seeds and scenario kinds.
//!
//! This is the contract that makes the round engine "one scheduler policy":
//! any drift between the engines — churn arbitration, delivery order,
//! metrics accounting, report computation — shows up here as a JSON diff.

use proptest::{prop_assert_eq, prop_oneof, proptest, ProptestConfig, Strategy};
use tsa_scenario::{
    AdversarySpec, ChurnSpec, ExecutionModel, LatencyModel, Scenario, ScenarioKind,
    ScenarioOutcome, ScenarioSpec,
};

/// Serializes an asynchronous outcome with its execution field and network
/// counters normalized away — the round engine records no execution model
/// and has no network model to count, so those are the only permitted
/// differences from its outcome.
fn normalized_json(mut outcome: ScenarioOutcome) -> String {
    outcome.spec.execution = ExecutionModel::Rounds;
    if let Some(m) = outcome.maintenance.as_mut() {
        m.net_stats = None;
    }
    serde_json::to_string(&outcome).expect("outcomes serialize")
}

/// The scenario grid the bridge is pinned over: every kind, with a churning
/// adversary on the maintained kind so the shared churn arbiter is exercised.
fn spec_strategy() -> impl Strategy<Value = (ScenarioSpec, u64)> {
    let kind = prop_oneof![
        (0u64..3).prop_map(|adv| {
            let mut spec = ScenarioSpec::new(ScenarioKind::MaintainedLds, 32);
            spec.c = Some(1.5);
            spec.tau = Some(3);
            spec.replication = Some(2);
            spec.churn = ChurnSpec::fraction(1, 4);
            spec.adversary = match adv {
                0 => AdversarySpec::null(),
                1 => AdversarySpec::random(1, 77),
                _ => AdversarySpec::targeted(1, 78),
            };
            spec
        }),
        (0u64..1).prop_map(|_| {
            let mut spec = ScenarioSpec::new(ScenarioKind::Routing, 48);
            spec.messages_per_node = 2;
            spec
        }),
        (0u64..1).prop_map(|_| {
            let mut spec = ScenarioSpec::new(ScenarioKind::Sampling, 48);
            spec.attempts = 2_000;
            spec
        }),
    ];
    (kind, 0u64..1_000_000)
}

/// The zero-latency/zero-jitter/zero-loss asynchronous model: every message
/// is delivered at the next round boundary, exactly like the round model.
fn zero_delay_async() -> ExecutionModel {
    ExecutionModel::asynchronous(LatencyModel::constant(0))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn zero_delay_async_reproduces_rounds_byte_identically((spec, seed) in spec_strategy()) {
        let rounds = 6;
        let sync = Scenario::from_spec(spec.clone().with_seed(seed)).run(rounds);

        let mut async_spec = spec.with_seed(seed);
        async_spec.execution = zero_delay_async();
        let asynch = Scenario::from_spec(async_spec).run(rounds);

        prop_assert_eq!(
            normalized_json(asynch),
            serde_json::to_string(&sync).unwrap()
        );
    }
}

#[test]
fn zero_delay_async_matches_rounds_under_every_adversary_kind() {
    // A deterministic (non-property) pin of the same bridge at fixed seeds,
    // so a regression is reproducible from the failure message alone.
    for (adv, seed) in [
        (AdversarySpec::null(), 5u64),
        (AdversarySpec::random(2, 9), 6),
        (AdversarySpec::targeted(1, 10), 7),
        (AdversarySpec::degree(1, 11), 8),
    ] {
        let base = || {
            Scenario::maintained_lds(32)
                .with_c(1.5)
                .with_tau(3)
                .with_replication(2)
                .churn(ChurnSpec::fraction(1, 2))
                .adversary(adv)
                .seed(seed)
        };
        let sync = base().run(10);
        let asynch = base().execution(zero_delay_async()).run(10);
        assert_eq!(
            normalized_json(asynch),
            serde_json::to_string(&sync).unwrap(),
            "engines diverged for {adv:?} at seed {seed}"
        );
    }
}

#[test]
fn any_sub_round_latency_is_also_the_round_model() {
    // Not just zero delay: every model whose delays stay within one round
    // lands on the next boundary, which *is* the synchronous one-round
    // message delay. The jittered and uniform cases are the sharp ones —
    // same-boundary deliveries arrive at *different* ticks, so this only
    // holds because the engine re-sorts each boundary's batch into send
    // order before it reaches the (order-sensitive!) protocol inboxes.
    let models = [
        ExecutionModel::asynchronous(LatencyModel::constant(500)),
        ExecutionModel::asynchronous(LatencyModel::constant(1000)),
        ExecutionModel::asynchronous(LatencyModel::constant(0)).with_jitter(1000),
        ExecutionModel::asynchronous(LatencyModel::uniform(1, 999)).with_jitter(1),
    ];
    for model in models {
        let base = || {
            Scenario::maintained_lds(32)
                .with_c(1.5)
                .with_tau(3)
                .with_replication(2)
                .churn(ChurnSpec::fraction(1, 4))
                .adversary(AdversarySpec::random(1, 44))
                .seed(3)
        };
        let sync = base().run(8);
        let asynch = base().execution(model.clone()).run(8);
        assert_eq!(
            normalized_json(asynch),
            serde_json::to_string(&sync).unwrap(),
            "sub-round model {model:?} must reproduce the round engine"
        );
    }
}
