//! The equivalence bridge for link topologies, pinned by property tests —
//! the topology-aware sibling of `async_equivalence.rs`:
//!
//! * `Topology::Global(m)` is the scalar network model `m`, byte-identically;
//! * `Topology::Regions { intra == inter }` is `Global` (for every region
//!   assignment and schedule), byte-identically;
//! * `Topology::PerLink` with no overrides is its base model,
//!   byte-identically.
//!
//! All three are pinned at the `ScenarioOutcome` level (full serialized
//! JSON) across scenario kinds, adversaries and seeds, and at the harness
//! level (`AsyncMaintenanceHarness` reports and metrics). The trace-level
//! pins live next to the engine in `tsa-event`. Together they make the
//! link-resolution layer "one more pure function": any drift — a region
//! lookup perturbing an RNG stream, a schedule consulted at the wrong round,
//! an override reordering deliveries — shows up here as a JSON diff.

use proptest::{prop_assert_eq, prop_oneof, proptest, ProptestConfig, Strategy};
use tsa_scenario::{
    AdversarySpec, ChurnSpec, ExecutionModel, LatencyModel, NetModel, PartitionSchedule,
    RegionAssign, Scenario, ScenarioKind, ScenarioSpec, Topology,
};

/// The scenario grid the bridge is pinned over: every kind, with a churning
/// adversary on the maintained kind so the shared churn arbiter is exercised
/// (joiners get fresh ids, which must land in regions deterministically).
fn spec_strategy() -> impl Strategy<Value = (ScenarioSpec, u64)> {
    let kind = prop_oneof![
        (0u64..3).prop_map(|adv| {
            let mut spec = ScenarioSpec::new(ScenarioKind::MaintainedLds, 32);
            spec.c = Some(1.5);
            spec.tau = Some(3);
            spec.replication = Some(2);
            spec.churn = ChurnSpec::fraction(1, 4);
            spec.adversary = match adv {
                0 => AdversarySpec::null(),
                1 => AdversarySpec::random(1, 77),
                _ => AdversarySpec::targeted(1, 78),
            };
            spec
        }),
        (0u64..1).prop_map(|_| {
            let mut spec = ScenarioSpec::new(ScenarioKind::Routing, 48);
            spec.messages_per_node = 2;
            spec
        }),
        (0u64..1).prop_map(|_| {
            let mut spec = ScenarioSpec::new(ScenarioKind::Sampling, 48);
            spec.attempts = 2_000;
            spec
        }),
    ];
    (kind, 0u64..1_000_000)
}

/// A genuinely asynchronous network model: delays straddle round boundaries,
/// jitter spreads them, and messages are lost — nothing about the runs below
/// is the synchronous special case.
fn net() -> NetModel {
    NetModel {
        latency: LatencyModel::uniform(200, 2600),
        jitter: 300,
        loss: 0.05,
    }
}

/// Region assignments the regional equivalence is quantified over.
fn assigns() -> Vec<RegionAssign> {
    vec![
        RegionAssign::halves(16),
        RegionAssign::bands(4, 3),
        RegionAssign::explicit(1, [(0, 0), (3, 2), (17, 0)]),
    ]
}

/// Runs `spec` and serializes the outcome with the execution model and the
/// cross-region bridge counters normalized away — the spec's execution field
/// records which engine ran, and a `Regions` topology *labels* some links as
/// bridges where `Global` labels none, so those are the only fields
/// equivalent runs may differ in. Everything else — including the loss and
/// delay counters of `net_stats` — stays pinned byte-identically.
fn normalized_json(spec: ScenarioSpec, rounds: u64) -> String {
    let mut outcome = Scenario::from_spec(spec).run(rounds);
    normalize(&mut outcome);
    serde_json::to_string(&outcome).expect("outcomes serialize")
}

/// See [`normalized_json`].
fn normalize(outcome: &mut tsa_scenario::ScenarioOutcome) {
    outcome.spec.execution = ExecutionModel::Rounds;
    if let Some(stats) = outcome
        .maintenance
        .as_mut()
        .and_then(|m| m.net_stats.as_mut())
    {
        stats.bridge_sent = 0;
        stats.bridge_lost = 0;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn global_topology_is_the_scalar_model_byte_identically(
        (spec, seed) in spec_strategy(),
    ) {
        let rounds = 6;
        let mut scalar = spec.clone().with_seed(seed);
        scalar.execution = ExecutionModel::asynchronous(LatencyModel::uniform(200, 2600))
            .with_jitter(300)
            .with_loss(0.05);
        let mut global = spec.with_seed(seed);
        global.execution = ExecutionModel::topo(Topology::global(net()));
        prop_assert_eq!(
            normalized_json(global, rounds),
            normalized_json(scalar, rounds)
        );
    }

    #[test]
    fn equal_intra_inter_regions_are_global_byte_identically(
        (spec, seed) in spec_strategy(),
        which in 0usize..3,
    ) {
        let rounds = 6;
        let mut global = spec.clone().with_seed(seed);
        global.execution = ExecutionModel::topo(Topology::global(net()));
        let mut regional = spec.with_seed(seed);
        regional.execution = ExecutionModel::topo(Topology::regions(
            assigns()[which].clone(),
            net(),
            net(),
        ));
        prop_assert_eq!(
            normalized_json(regional, rounds),
            normalized_json(global, rounds)
        );
    }
}

#[test]
fn equal_model_regions_match_global_under_every_assign_and_schedule() {
    // A deterministic (non-property) pin of the same bridge at fixed seeds,
    // so a regression is reproducible from the failure message alone —
    // including scheduled bridges, whose round-dependence must be invisible
    // when intra == inter.
    let base = || {
        Scenario::maintained_lds(32)
            .with_c(1.5)
            .with_tau(3)
            .with_replication(2)
            .churn(ChurnSpec::fraction(1, 2))
            .adversary(AdversarySpec::random(2, 9))
            .seed(6)
    };
    let global = {
        let mut outcome = base().topology(Topology::global(net())).run(10);
        normalize(&mut outcome);
        serde_json::to_string(&outcome).unwrap()
    };
    for assign in assigns() {
        for schedule in [
            None,
            Some(PartitionSchedule::window(3, 9)),
            Some(PartitionSchedule::starting_at(0)),
        ] {
            let topology = match schedule {
                None => Topology::regions(assign.clone(), net(), net()),
                Some(s) => Topology::regions_with_schedule(assign.clone(), net(), net(), s),
            };
            let mut outcome = base().topology(topology.clone()).run(10);
            normalize(&mut outcome);
            assert_eq!(
                serde_json::to_string(&outcome).unwrap(),
                global,
                "equal-model regions diverged from global for {}",
                topology.label()
            );
        }
    }
}

#[test]
fn per_link_without_overrides_is_its_base_model() {
    let base = || {
        Scenario::maintained_lds(32)
            .with_c(1.5)
            .with_tau(3)
            .with_replication(2)
            .churn(ChurnSpec::fraction(1, 2))
            .adversary(AdversarySpec::targeted(1, 11))
            .seed(8)
    };
    let mut global = base().topology(Topology::global(net())).run(10);
    let mut link = base()
        .topology(Topology::per_link(net(), Vec::new()))
        .run(10);
    global.spec.execution = ExecutionModel::Rounds;
    link.spec.execution = ExecutionModel::Rounds;
    assert_eq!(
        serde_json::to_string(&link).unwrap(),
        serde_json::to_string(&global).unwrap()
    );
}

#[test]
fn zero_delay_global_topology_reproduces_the_round_engine() {
    // Transitivity anchor: Global(constant 0) ≡ scalar constant 0 ≡ the
    // synchronous round engine — so the whole topology layer is pinned all
    // the way back to the paper's execution model.
    let base = || {
        Scenario::maintained_lds(32)
            .with_c(1.5)
            .with_tau(3)
            .with_replication(2)
            .churn(ChurnSpec::fraction(1, 2))
            .adversary(AdversarySpec::random(1, 13))
            .seed(12)
    };
    let sync = base().run(8);
    let mut topo = base()
        .topology(Topology::global(NetModel::new(LatencyModel::constant(0))))
        .run(8);
    topo.spec.execution = ExecutionModel::Rounds;
    // The round engine has no network model, so it reports no counters;
    // drop the event engine's before the byte comparison.
    let stats = topo
        .maintenance
        .as_mut()
        .and_then(|m| m.net_stats.take())
        .expect("async outcomes carry network counters");
    assert_eq!(stats.lost, 0, "a zero-delay lossless model loses nothing");
    assert_eq!(
        serde_json::to_string(&topo).unwrap(),
        serde_json::to_string(&sync).unwrap(),
        "a zero-delay global topology must be the round engine"
    );
}

#[test]
fn harness_level_reports_agree_between_global_and_equal_regions() {
    // The harness-level pin: identical reports, metrics and cross-region
    // accounting straight from AsyncMaintenanceHarness, without the
    // Scenario layer in between.
    use tsa_core::{AsyncMaintenanceHarness, MaintenanceParams};
    use tsa_sim::NullAdversary;

    let params = MaintenanceParams::new(48)
        .with_c(1.5)
        .with_tau(4)
        .with_replication(2);
    let run = |topology: Topology| {
        let mut h = AsyncMaintenanceHarness::assemble_with_topology(
            params,
            NullAdversary,
            17,
            params.paper_churn_rules(),
            params.paper_lateness(),
            topology,
        );
        h.run_bootstrap();
        h.run(6);
        (
            serde_json::to_string(&h.report()).unwrap(),
            h.metrics().summary(),
            h.net_stats().sent,
            h.net_stats().lost,
        )
    };
    let global = run(Topology::global(net()));
    let regions = run(Topology::regions(RegionAssign::halves(24), net(), net()));
    assert_eq!(regions, global);
    // Sanity: the equal-model regional run still *accounts* bridge traffic —
    // the halves really are talking through the (healthy) bridge.
    let mut h = AsyncMaintenanceHarness::assemble_with_topology(
        params,
        NullAdversary,
        17,
        params.paper_churn_rules(),
        params.paper_lateness(),
        Topology::regions(RegionAssign::halves(24), net(), net()),
    );
    h.run_bootstrap();
    assert!(h.net_stats().bridge_sent > 0);
    assert!(h.cross_region_edges() > 0);
}
