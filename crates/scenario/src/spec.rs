//! The declarative description of a scenario: what kind of experiment, on how
//! many nodes, under which churn rules, against which adversary.
//!
//! Every spec type is plain serde-serializable data, so a [`ScenarioSpec`]
//! embedded in a `ScenarioOutcome` fully documents how a result was produced.

use serde::{Deserialize, Serialize};
use tsa_core::{ByzantineSpec, MaintenanceParams};
use tsa_event::{ExecutionModel, FaultPlan};
use tsa_sim::{ChurnRules, Lateness, MetricsMode};

/// Which experiment a scenario executes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScenarioKind {
    /// The paper's maintained Linearized DeBruijn Swarm: the full
    /// message-level protocol running inside the simulator.
    MaintainedLds,
    /// A static comparison overlay attacked with a one-shot churn burst
    /// (the Table-1 trials).
    Baseline(BaselineKind),
    /// `A_ROUTING` over a routable series of ideal LDS snapshots.
    Routing,
    /// `A_SAMPLING` uniformity over a static LDS snapshot.
    Sampling,
}

/// The static comparison overlays of Table 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum BaselineKind {
    /// Union of `d` random rings (Drees, Gmyr & Scheideler).
    HdGraph,
    /// Wrapped butterfly of `Θ(log n)` committees (Augustine &
    /// Sivasubramaniam).
    Spartan,
    /// Chord with swarms (Fiat, Saia & Young).
    ChordSwarm,
    /// A Linearized DeBruijn Swarm that is never reconfigured.
    StaticLds,
}

impl BaselineKind {
    /// A short human-readable label for tables.
    pub fn label(&self) -> &'static str {
        match self {
            BaselineKind::HdGraph => "H_d graph",
            BaselineKind::Spartan => "SPARTAN butterfly",
            BaselineKind::ChordSwarm => "Chord with swarms",
            BaselineKind::StaticLds => "LDS, never reconfigured",
        }
    }
}

/// How much churn the engine lets the adversary spend, and under which join
/// rules.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChurnSpec {
    /// No churn budget at all (`max_events = 0`); with the default
    /// [`AdversarySpec::Null`] this reproduces the old
    /// `MaintenanceHarness::without_churn` behaviour.
    None,
    /// The paper's headline rules: `αn` events with `α = 1/16` per
    /// `4λ + 14`-round window, joins via ≥2-round-old bootstrap nodes.
    Paper,
    /// `max_events` churn events per paper churn window (the harsher budgets
    /// the stress experiments use, e.g. `n/4`).
    Budget {
        /// Maximum churn events per window.
        max_events: usize,
    },
    /// Explicit events-per-window control.
    BudgetWindow {
        /// Maximum churn events per window.
        max_events: usize,
        /// The window length in rounds.
        window: u64,
    },
    /// `n · num / den` churn events per paper churn window, resolved against
    /// the scenario's own `n`. This is the spec a parameter sweep wants: one
    /// churn axis value ("a quarter of the network per window") that scales
    /// with the `n` axis instead of baking in an absolute budget.
    Fraction {
        /// Numerator of the fraction of `n`.
        num: usize,
        /// Denominator of the fraction of `n` (must be nonzero).
        den: usize,
    },
    /// Fully explicit engine rules (impossibility experiments, weakened join
    /// rules, unconstrained adversaries).
    Custom {
        /// The rules handed verbatim to the engine.
        rules: ChurnRules,
    },
}

impl ChurnSpec {
    /// No churn budget.
    pub fn none() -> Self {
        ChurnSpec::None
    }

    /// The paper's headline churn rules.
    pub fn paper() -> Self {
        ChurnSpec::Paper
    }

    /// `max_events` churn events per paper churn window.
    pub fn budget(max_events: usize) -> Self {
        ChurnSpec::Budget { max_events }
    }

    /// `max_events` churn events per explicit `window`.
    pub fn budget_with_window(max_events: usize, window: u64) -> Self {
        ChurnSpec::BudgetWindow { max_events, window }
    }

    /// Fully explicit engine rules.
    pub fn custom(rules: ChurnRules) -> Self {
        ChurnSpec::Custom { rules }
    }

    /// `n · num / den` churn events per paper churn window (`n`-relative).
    pub fn fraction(num: usize, den: usize) -> Self {
        assert!(den > 0, "fraction denominator must be nonzero");
        ChurnSpec::Fraction { num, den }
    }

    /// A short human-readable label for sweep tables.
    pub fn label(&self) -> String {
        match *self {
            ChurnSpec::None => "none".to_string(),
            ChurnSpec::Paper => "paper".to_string(),
            ChurnSpec::Budget { max_events } => format!("{max_events}/window"),
            ChurnSpec::BudgetWindow { max_events, window } => {
                format!("{max_events}/{window}r")
            }
            ChurnSpec::Fraction { num, den } => {
                if num == 1 {
                    format!("n/{den}")
                } else {
                    format!("{num}n/{den}")
                }
            }
            ChurnSpec::Custom { .. } => "custom".to_string(),
        }
    }

    /// Resolves the spec into concrete engine rules for `params`.
    pub fn rules_for(&self, params: &MaintenanceParams) -> ChurnRules {
        match *self {
            ChurnSpec::None => ChurnRules {
                max_events: Some(0),
                window: params.overlay.churn_window(),
                bootstrap_rounds: params.bootstrap_rounds(),
                ..ChurnRules::default()
            },
            ChurnSpec::Paper => params.paper_churn_rules(),
            ChurnSpec::Budget { max_events } => ChurnRules {
                max_events: Some(max_events),
                window: params.overlay.churn_window(),
                bootstrap_rounds: params.bootstrap_rounds(),
                ..ChurnRules::default()
            },
            ChurnSpec::BudgetWindow { max_events, window } => ChurnRules {
                max_events: Some(max_events),
                window,
                bootstrap_rounds: params.bootstrap_rounds(),
                ..ChurnRules::default()
            },
            ChurnSpec::Fraction { num, den } => ChurnRules {
                max_events: Some(params.overlay.n * num / den.max(1)),
                window: params.overlay.churn_window(),
                bootstrap_rounds: params.bootstrap_rounds(),
                ..ChurnRules::default()
            },
            ChurnSpec::Custom { rules } => rules,
        }
    }

    /// The one-shot removal budget a baseline trial spends (the maintained
    /// protocol spreads the same budget over a churn window instead). An
    /// unconstrained custom spec (`max_events = None`) maps to `n`, i.e. the
    /// whole network (the trial itself caps removals at `n - 1`).
    pub fn burst_budget(&self, n: usize) -> usize {
        match *self {
            ChurnSpec::None => 0,
            ChurnSpec::Paper => n / 16,
            ChurnSpec::Budget { max_events } | ChurnSpec::BudgetWindow { max_events, .. } => {
                max_events
            }
            ChurnSpec::Fraction { num, den } => n * num / den.max(1),
            ChurnSpec::Custom { rules } => rules.max_events.unwrap_or(n),
        }
    }
}

/// Which attack strategy drives the churn.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdversarySpec {
    /// No adversary: nothing ever leaves or joins.
    Null,
    /// Oblivious uniform churn (the control group).
    Random {
        /// Churn events attempted per round.
        per_round: usize,
        /// Seed of the adversary's own coin flips.
        seed: u64,
    },
    /// The strongest topology-late attack: wipe out observed swarms.
    Targeted {
        /// Departures attempted per round.
        per_round: usize,
        /// Seed of the adversary's own coin flips.
        seed: u64,
    },
    /// Remove the highest-degree nodes the stale topology view shows.
    Degree {
        /// Departures attempted per round.
        per_round: usize,
        /// Seed of the adversary's own coin flips.
        seed: u64,
    },
}

impl AdversarySpec {
    /// No adversary.
    pub fn null() -> Self {
        AdversarySpec::Null
    }

    /// Oblivious uniform churn.
    pub fn random(per_round: usize, seed: u64) -> Self {
        AdversarySpec::Random { per_round, seed }
    }

    /// Targeted-swarm churn.
    pub fn targeted(per_round: usize, seed: u64) -> Self {
        AdversarySpec::Targeted { per_round, seed }
    }

    /// Degree-attack churn.
    pub fn degree(per_round: usize, seed: u64) -> Self {
        AdversarySpec::Degree { per_round, seed }
    }

    /// A short human-readable label matching `Adversary::name`.
    pub fn label(&self) -> &'static str {
        match self {
            AdversarySpec::Null => "none",
            AdversarySpec::Random { .. } => "random-churn",
            AdversarySpec::Targeted { .. } => "targeted-swarm",
            AdversarySpec::Degree { .. } => "degree-attack",
        }
    }
}

/// The complete declarative description of one scenario.
///
/// `Clone` but deliberately not `Copy`: the execution model may carry a link
/// topology with explicit region maps or per-link overrides, which are
/// heap-backed. Every other field is plain data.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// What kind of experiment runs.
    pub kind: ScenarioKind,
    /// The network-size lower bound `n`.
    pub n: usize,
    /// Master seed of the run.
    pub seed: u64,
    /// Override of the robustness parameter `c`.
    pub c: Option<f64>,
    /// Override of `δ` (fresh-node connects per round).
    pub delta: Option<usize>,
    /// Override of `τ` (sampling tokens per round).
    pub tau: Option<usize>,
    /// Override of the replication factor `r`.
    pub replication: Option<usize>,
    /// The churn budget and join rules.
    pub churn: ChurnSpec,
    /// The attack strategy.
    pub adversary: AdversarySpec,
    /// Override of the adversary lateness (defaults to the paper's
    /// `(2, 2λ+7)`).
    pub lateness: Option<Lateness>,
    /// Which execution engine runs a maintained scenario: the synchronous
    /// round model (default) or the virtual-time event engine under a
    /// latency/jitter/loss model. One-shot kinds ignore it. Serialized only
    /// when asynchronous, so every pre-existing artifact (and every
    /// synchronous spec) keeps its exact serialized form.
    #[serde(default, skip_serializing_if = "ExecutionModel::is_rounds")]
    pub execution: ExecutionModel,
    /// How the engine retains per-round metrics for a maintained scenario:
    /// the full per-round history (default), or O(1) streaming accumulators
    /// whose [`MetricsSummary`](tsa_sim::MetricsSummary) digest is pinned
    /// identical to the full fold. One-shot kinds ignore it. Serialized only
    /// when streaming, so every pre-existing artifact (and every full-mode
    /// spec) keeps its exact serialized form.
    #[serde(default, skip_serializing_if = "MetricsMode::is_full")]
    pub metrics: MetricsMode,
    /// The fault-injection plan applied at the message boundary of a
    /// maintained scenario. Faults act where messages are delivered, so a
    /// plan forces the event engine even under the default synchronous
    /// execution (a zero-delay model otherwise reproduces the round engine).
    /// One-shot kinds ignore it. Serialized only when present, so every
    /// pre-existing artifact keeps its exact serialized form.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub faults: Option<FaultPlan>,
    /// The byzantine role assignment of a maintained scenario: which id
    /// slice misbehaves, and how. Flows into
    /// [`MaintenanceParams::byzantine`], so all three engines resolve it
    /// through the shared harness factory. Serialized only when present.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub byzantine: Option<ByzantineSpec>,
    /// Whether to run the churn-free bootstrap phase before the measured
    /// rounds (maintained scenarios only).
    pub bootstrap: bool,
    /// Messages per node in a routing workload.
    pub messages_per_node: usize,
    /// Per-step holder failure probability in a routing workload.
    pub holder_failure: f64,
    /// Attempts in a sampling workload.
    pub attempts: usize,
    /// Seed of the workload generator (defaults to a value derived from
    /// `seed`).
    pub workload_seed: Option<u64>,
}

impl ScenarioSpec {
    /// A fresh spec of the given kind over `n` nodes, everything else at the
    /// paper's defaults.
    pub fn new(kind: ScenarioKind, n: usize) -> Self {
        ScenarioSpec {
            kind,
            n,
            seed: 0xDEC0DE,
            c: None,
            delta: None,
            tau: None,
            replication: None,
            churn: ChurnSpec::Paper,
            adversary: AdversarySpec::Null,
            lateness: None,
            execution: ExecutionModel::Rounds,
            metrics: MetricsMode::Full,
            faults: None,
            byzantine: None,
            bootstrap: true,
            messages_per_node: 1,
            holder_failure: 0.0,
            attempts: 100_000,
            workload_seed: None,
        }
    }

    /// The maintenance parameters this spec resolves to, built in the
    /// canonical order (`new(n)`, then `c`, `δ`, `τ`, `r`) so results are
    /// byte-identical to hand-built parameter chains.
    pub fn maintenance_params(&self) -> MaintenanceParams {
        let mut params = MaintenanceParams::new(self.n);
        if let Some(c) = self.c {
            params = params.with_c(c);
        }
        if let Some(delta) = self.delta {
            params = params.with_delta(delta);
        }
        if let Some(tau) = self.tau {
            params = params.with_tau(tau);
        }
        if let Some(r) = self.replication {
            params = params.with_replication(r);
        }
        if let Some(spec) = self.byzantine {
            params = params.with_byzantine(spec);
        }
        params
    }

    /// The overlay parameters for structure-only scenarios (baselines,
    /// routing, sampling): `c` defaults to the overlay crate's default.
    pub fn overlay_params(&self) -> tsa_overlay::OverlayParams {
        match self.c {
            Some(c) => tsa_overlay::OverlayParams::new(self.n, c),
            None => tsa_overlay::OverlayParams::with_default_c(self.n),
        }
    }

    /// The workload seed, derived from the master seed when unset.
    pub fn workload_seed_or_default(&self) -> u64 {
        self.workload_seed
            .unwrap_or_else(|| self.seed.rotate_left(13) ^ 0x574F_524B)
    }

    /// Returns a copy with the master seed replaced — the hook sweep
    /// enumeration uses to stamp seed replicates onto one grid cell.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// A short name for the experiment kind.
    pub fn kind_label(&self) -> &'static str {
        match self.kind {
            ScenarioKind::MaintainedLds => "maintained",
            ScenarioKind::Baseline(kind) => kind.label(),
            ScenarioKind::Routing => "routing",
            ScenarioKind::Sampling => "sampling",
        }
    }

    /// A compact human-readable description of the axis point this spec sits
    /// at — every knob except the seeds. Two seed replicates of the same grid
    /// cell share this label, so sweeps group by it.
    pub fn axis_label(&self) -> String {
        let mut parts = vec![format!("{} n={}", self.kind_label(), self.n)];
        if let Some(c) = self.c {
            parts.push(format!("c={c}"));
        }
        if let Some(delta) = self.delta {
            parts.push(format!("δ={delta}"));
        }
        if let Some(tau) = self.tau {
            parts.push(format!("τ={tau}"));
        }
        if let Some(r) = self.replication {
            parts.push(format!("r={r}"));
        }
        match self.kind {
            ScenarioKind::MaintainedLds | ScenarioKind::Baseline(_) => {
                parts.push(format!("churn={}", self.churn.label()));
                parts.push(format!("adv={}", self.adversary.label()));
                if let Some(l) = self.lateness {
                    parts.push(format!("late=({},{})", l.topology, l.state));
                }
                // Synchronous execution is the default and adds nothing, so
                // pre-ExecutionModel labels are reproduced verbatim.
                if !self.execution.is_rounds() {
                    parts.push(format!("exec={}", self.execution.label()));
                }
                // Same rule for the metrics mode: the full history is the
                // default and adds nothing.
                if !self.metrics.is_full() {
                    parts.push("metrics=streaming".to_string());
                }
                // Fault-free, all-honest runs are the default and add
                // nothing, so pre-fault labels are reproduced verbatim.
                if let Some(plan) = &self.faults {
                    parts.push(format!("faults={}", plan.label()));
                }
                if let Some(byz) = &self.byzantine {
                    // `ByzantineSpec::label` is already `byz`-prefixed.
                    parts.push(byz.label());
                }
            }
            ScenarioKind::Routing => {
                parts.push(format!("k={}", self.messages_per_node));
                if self.holder_failure > 0.0 {
                    parts.push(format!("fail={}", self.holder_failure));
                }
            }
            ScenarioKind::Sampling => {
                parts.push(format!("attempts={}", self.attempts));
            }
        }
        parts.join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_compose_in_canonical_order() {
        let mut spec = ScenarioSpec::new(ScenarioKind::MaintainedLds, 48);
        spec.c = Some(1.5);
        spec.tau = Some(4);
        spec.replication = Some(2);
        let via_spec = spec.maintenance_params();
        let by_hand = MaintenanceParams::new(48)
            .with_c(1.5)
            .with_tau(4)
            .with_replication(2);
        assert_eq!(via_spec, by_hand);
    }

    #[test]
    fn churn_specs_resolve_to_engine_rules() {
        let params = MaintenanceParams::new(64);
        assert_eq!(
            ChurnSpec::paper().rules_for(&params),
            params.paper_churn_rules()
        );
        let budget = ChurnSpec::budget(16).rules_for(&params);
        assert_eq!(budget.max_events, Some(16));
        assert_eq!(budget.window, params.overlay.churn_window());
        assert_eq!(ChurnSpec::none().rules_for(&params).max_events, Some(0));
        let custom = ChurnRules::default().with_weak_join_rule();
        assert_eq!(ChurnSpec::custom(custom).rules_for(&params), custom);
    }

    #[test]
    fn burst_budgets_match_the_window_budgets() {
        assert_eq!(ChurnSpec::budget(64).burst_budget(256), 64);
        assert_eq!(ChurnSpec::paper().burst_budget(256), 16);
        assert_eq!(ChurnSpec::none().burst_budget(256), 0);
        // An unconstrained custom spec means "the whole network".
        let unconstrained = ChurnRules {
            max_events: None,
            ..ChurnRules::default()
        };
        assert_eq!(ChurnSpec::custom(unconstrained).burst_budget(256), 256);
    }

    #[test]
    fn fraction_budgets_resolve_against_n() {
        let params = MaintenanceParams::new(64);
        let rules = ChurnSpec::fraction(1, 4).rules_for(&params);
        assert_eq!(rules.max_events, Some(16));
        assert_eq!(rules.window, params.overlay.churn_window());
        assert_eq!(
            rules,
            ChurnSpec::budget(16).rules_for(&params),
            "n/4 at n = 64 is exactly budget(16)"
        );
        assert_eq!(ChurnSpec::fraction(1, 4).burst_budget(256), 64);
        assert_eq!(ChurnSpec::fraction(3, 8).burst_budget(64), 24);
        assert_eq!(ChurnSpec::fraction(1, 4).label(), "n/4");
        assert_eq!(ChurnSpec::fraction(3, 8).label(), "3n/8");
    }

    #[test]
    fn axis_labels_describe_the_cell_without_seeds() {
        let spec = ScenarioSpec::new(ScenarioKind::MaintainedLds, 96);
        let mut replicate = spec;
        replicate.c = Some(1.5);
        let a = replicate.clone().with_seed(1).axis_label();
        let b = replicate.with_seed(2).axis_label();
        assert_eq!(a, b, "seed replicates share the axis label");
        assert!(a.contains("maintained n=96"), "{a}");
        assert!(a.contains("c=1.5"), "{a}");
        assert!(a.contains("churn=paper"), "{a}");
        let mut routing = ScenarioSpec::new(ScenarioKind::Routing, 128);
        routing.holder_failure = 0.25;
        assert!(routing.axis_label().contains("k=1"));
        assert!(routing.axis_label().contains("fail=0.25"));
    }

    #[test]
    fn specs_serialize_and_deserialize() {
        let mut spec = ScenarioSpec::new(ScenarioKind::Baseline(BaselineKind::Spartan), 128);
        spec.adversary = AdversarySpec::targeted(2, 7);
        spec.churn = ChurnSpec::budget(32);
        let json = serde_json::to_string(&spec).unwrap();
        let back: ScenarioSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn full_metrics_specs_never_serialize_the_metrics_field() {
        // Same byte-compatibility contract as `execution`: a Full-mode spec
        // serializes exactly as it did before MetricsMode existed, and JSON
        // without the field deserializes to Full — so every committed
        // BENCH_*.json and every old sweep shard round-trips unchanged.
        let spec = ScenarioSpec::new(ScenarioKind::MaintainedLds, 64);
        let json = serde_json::to_string(&spec).unwrap();
        assert!(!json.contains("metrics"), "Full must be skipped: {json}");
        let back: ScenarioSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back.metrics, MetricsMode::Full);
        assert_eq!(back, spec);
        assert!(
            !spec.axis_label().contains("metrics="),
            "{}",
            spec.axis_label()
        );

        let mut streaming = spec;
        streaming.metrics = MetricsMode::Streaming;
        let json = serde_json::to_string(&streaming).unwrap();
        assert!(json.contains("\"metrics\":\"Streaming\""), "{json}");
        let back: ScenarioSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, streaming);
        assert!(
            streaming.axis_label().contains("metrics=streaming"),
            "{}",
            streaming.axis_label()
        );
    }

    #[test]
    fn fault_free_specs_never_serialize_the_fault_fields() {
        // The byte-compatibility contract once more: a spec without faults
        // or byzantine nodes serializes exactly as it did before either
        // existed, and JSON without the fields deserializes to None — so
        // every committed BENCH_*.json round-trips unchanged.
        use tsa_core::MisbehaviorKind;
        use tsa_event::{FaultAction, FaultRule};
        let spec = ScenarioSpec::new(ScenarioKind::MaintainedLds, 64);
        let json = serde_json::to_string(&spec).unwrap();
        assert!(!json.contains("faults"), "None must be skipped: {json}");
        assert!(!json.contains("byzantine"), "None must be skipped: {json}");
        let back: ScenarioSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back.faults, None);
        assert_eq!(back.byzantine, None);
        assert_eq!(back, spec);
        assert!(!spec.axis_label().contains("faults="));
        assert!(!spec.axis_label().contains("byz"));

        let mut faulty = spec;
        faulty.faults = Some(FaultPlan::new().with_rule(FaultRule::every(FaultAction::Drop)));
        faulty.byzantine = Some(ByzantineSpec::fraction(
            1,
            8,
            MisbehaviorKind::SelectiveForward,
        ));
        let json = serde_json::to_string(&faulty).unwrap();
        assert!(json.contains("\"faults\""), "{json}");
        assert!(json.contains("\"byzantine\""), "{json}");
        let back: ScenarioSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, faulty);
        let label = faulty.axis_label();
        assert!(label.contains("faults=fd*"), "{label}");
        assert!(label.contains("byz1/8-selfwd"), "{label}");
    }

    #[test]
    fn byzantine_specs_resolve_into_maintenance_params() {
        use tsa_core::MisbehaviorKind;
        let mut spec = ScenarioSpec::new(ScenarioKind::MaintainedLds, 64);
        spec.byzantine = Some(ByzantineSpec::fraction(1, 4, MisbehaviorKind::BogusReplies));
        let params = spec.maintenance_params();
        assert_eq!(params.byzantine, spec.byzantine);
        // ... and an all-honest spec resolves to all-honest params.
        assert_eq!(
            ScenarioSpec::new(ScenarioKind::MaintainedLds, 64)
                .maintenance_params()
                .byzantine,
            None
        );
    }

    #[test]
    fn synchronous_specs_never_serialize_the_execution_field() {
        // The byte-compatibility contract: a Rounds spec serializes exactly
        // as it did before ExecutionModel existed, and JSON without the
        // field deserializes to Rounds — so every committed BENCH_*.json and
        // every old sweep shard round-trips unchanged.
        let spec = ScenarioSpec::new(ScenarioKind::MaintainedLds, 64);
        let json = serde_json::to_string(&spec).unwrap();
        assert!(
            !json.contains("execution"),
            "Rounds must be skipped: {json}"
        );
        let back: ScenarioSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back.execution, ExecutionModel::Rounds);
        assert_eq!(back, spec);
    }

    #[test]
    fn async_specs_round_trip_with_their_network_model() {
        use tsa_event::LatencyModel;
        let mut spec = ScenarioSpec::new(ScenarioKind::MaintainedLds, 64);
        spec.execution = ExecutionModel::asynchronous(LatencyModel::uniform(200, 1800))
            .with_jitter(100)
            .with_loss(0.01);
        let json = serde_json::to_string(&spec).unwrap();
        assert!(json.contains("execution"), "{json}");
        let back: ScenarioSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
        let label = spec.axis_label();
        assert!(
            label.contains("exec=async(u200-1800+j100-l0.01)"),
            "{label}"
        );
        // ... and the synchronous label is unchanged from before.
        let sync_label = ScenarioSpec::new(ScenarioKind::MaintainedLds, 64).axis_label();
        assert!(!sync_label.contains("exec="), "{sync_label}");
    }
}
