//! The serde-serializable result of running a scenario.
//!
//! A [`ScenarioOutcome`] always carries the [`ScenarioSpec`]
//! that produced it, plus exactly one of the kind-specific payloads. The
//! experiment binaries serialize these as `BENCH_*.json`, so every published
//! number is reproducible from the spec embedded next to it.

use serde::{Deserialize, Serialize};
use tsa_baselines::ResilienceOutcome;
use tsa_core::MaintenanceReport;
use tsa_event::{FaultStats, NetStats};
use tsa_sim::{MetricsHistory, MetricsSummary};

use crate::spec::ScenarioSpec;

/// Result of a maintained-LDS scenario: the final health report, a compact
/// whole-run metrics digest, and (unless compacted away) the full per-round
/// message metrics.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MaintenanceOutcome {
    /// Health of the overlay after the final round.
    pub report: MaintenanceReport,
    /// Compact whole-run digest of the message metrics — always present, and
    /// all `BENCH_*.json` stores by default.
    pub metrics_summary: MetricsSummary,
    /// Per-round message/congestion/churn metrics of the whole run. `None`
    /// after [`ScenarioOutcome::compact`]; experiment binaries keep it behind
    /// `--full`.
    pub metrics: Option<MetricsHistory>,
    /// The largest number of fresh-node connects any mature node received in
    /// the final round (the Lemma 22 quantity).
    pub max_connect_load: usize,
    /// Whole-run network-effect counters — loss, delays, and the
    /// cross-region bridge traffic of partition topologies
    /// (`bridge_sent` / `bridge_lost`). Only asynchronous executions have a
    /// network model, so this is `None` for round-engine runs and absent
    /// from their serialized form (which keeps pre-existing artifacts
    /// byte-stable).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub net_stats: Option<NetStats>,
    /// Whole-run counters of injected faults. Only present when the spec
    /// carried a [`FaultPlan`](tsa_event::FaultPlan), so fault-free outcomes
    /// (and every pre-existing artifact) keep their exact serialized form.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub fault_stats: Option<FaultStats>,
}

/// Result of a static-baseline attack trial.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct BaselineOutcome {
    /// The removal budget the attack spent.
    pub budget: usize,
    /// What was left of the structure after the attack.
    pub resilience: ResilienceOutcome,
    /// The budget a topology-aware adversary needs to eclipse the
    /// easiest-to-cut node of this *static* structure: its minimum degree.
    pub eclipse_budget: usize,
}

/// Result of an `A_ROUTING` workload over a routable series.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct RoutingOutcome {
    /// Number of address bits `λ`.
    pub lambda: u32,
    /// Messages routed.
    pub total: usize,
    /// Messages delivered to their target swarm.
    pub delivered: usize,
    /// Delivered fraction.
    pub delivery_rate: f64,
    /// The dilation every delivered message took (always `2λ + 2`).
    pub dilation: u64,
    /// Maximum copies handled by one node in one round.
    pub max_congestion: usize,
    /// Mean copies per active (node, round) pair.
    pub mean_congestion: f64,
    /// Total copies created across all messages.
    pub total_copies: usize,
    /// Mean fraction of the target swarm covered, over delivered messages.
    pub mean_target_coverage: f64,
}

/// Result of an `A_SAMPLING` uniformity workload.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SamplingOutcome {
    /// Sampling attempts.
    pub attempts: usize,
    /// Attempts discarded by the delivery rule.
    pub discarded: usize,
    /// Empirical discard probability (Lemma 13 bounds it by `1/2 + o(1)`).
    pub discard_rate: f64,
    /// Distinct nodes selected at least once.
    pub distinct_nodes: usize,
    /// Smallest per-node hit count.
    pub hits_min: usize,
    /// Mean per-node hit count.
    pub hits_mean: f64,
    /// Largest per-node hit count.
    pub hits_max: usize,
    /// Total-variation distance to the uniform distribution.
    pub total_variation: f64,
    /// Pearson chi-square statistic against the uniform distribution.
    pub chi_square: f64,
    /// Degrees of freedom of the chi-square statistic.
    pub degrees_of_freedom: usize,
}

/// The complete, self-describing result of one scenario run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ScenarioOutcome {
    /// A short human-readable description of the run.
    pub label: String,
    /// The spec that produced this outcome.
    pub spec: ScenarioSpec,
    /// Measured rounds executed after the (optional) bootstrap phase, so
    /// `Scenario::from_spec(outcome.spec).run(outcome.rounds)` replays this
    /// outcome exactly. 0 for one-shot trials.
    pub rounds: u64,
    /// Present for [`ScenarioKind::MaintainedLds`](crate::ScenarioKind) runs.
    pub maintenance: Option<MaintenanceOutcome>,
    /// Present for [`ScenarioKind::Baseline`](crate::ScenarioKind) runs.
    pub baseline: Option<BaselineOutcome>,
    /// Present for [`ScenarioKind::Routing`](crate::ScenarioKind) runs.
    pub routing: Option<RoutingOutcome>,
    /// Present for [`ScenarioKind::Sampling`](crate::ScenarioKind) runs.
    pub sampling: Option<SamplingOutcome>,
}

impl ScenarioOutcome {
    /// Whether a maintained run ended routable (always `false` for other
    /// kinds).
    pub fn is_routable(&self) -> bool {
        self.maintenance
            .as_ref()
            .map(|m| m.report.is_routable())
            .unwrap_or(false)
    }

    /// Drops the bulky per-round metrics history, keeping the
    /// [`MetricsSummary`] digest. One-shot outcomes are unchanged. This is
    /// what experiment binaries serialize by default; pass `--full` to keep
    /// the raw history.
    ///
    /// The digest is **re-folded from the history first** whenever a history
    /// is present: the per-round congestion rows are the source of truth for
    /// the paper's Lemma 24 claim (max per-node congestion over the whole
    /// run), so the max must be recorded before the rows are dropped.
    /// Without this, an outcome whose digest went stale — assembled by hand,
    /// or deserialized from an artifact written before the digest existed —
    /// would silently lose its peak congestion in every compacted
    /// `BENCH_*.json`.
    pub fn compact(mut self) -> Self {
        if let Some(m) = self.maintenance.as_mut() {
            if let Some(history) = m.metrics.take() {
                m.metrics_summary = history.summary();
            }
        }
        self
    }

    /// A compacted copy: [`clone`](Clone::clone) + [`compact`](Self::compact)
    /// without ever copying the per-round history (which for long maintained
    /// runs is megabytes the compaction would immediately drop).
    pub fn to_compact(&self) -> Self {
        ScenarioOutcome {
            label: self.label.clone(),
            spec: self.spec.clone(),
            rounds: self.rounds,
            maintenance: self.maintenance.as_ref().map(|m| MaintenanceOutcome {
                report: m.report.clone(),
                // Same rule as `compact`: the history, when present, is the
                // source of truth for the digest.
                metrics_summary: m
                    .metrics
                    .as_ref()
                    .map(|h| h.summary())
                    .unwrap_or(m.metrics_summary),
                metrics: None,
                max_connect_load: m.max_connect_load,
                net_stats: m.net_stats,
                fault_stats: m.fault_stats,
            }),
            baseline: self.baseline,
            routing: self.routing,
            sampling: self.sampling,
        }
    }

    /// Compact JSON rendering.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("outcome serialization is infallible")
    }

    /// Pretty JSON rendering, as written into `BENCH_*.json`.
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(self).expect("outcome serialization is infallible")
    }
}
