//! The fluent [`Scenario`] builder and the live [`ScenarioRun`] handle.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use tsa_adversary::{DegreeAttackAdversary, RandomChurnAdversary, TargetedSwarmAdversary};
use tsa_analysis::uniformity;
use tsa_baselines::{attack_trial, AttackMode, ChordSwarm, HdGraph, SpartanOverlay};
use tsa_core::{
    AsyncMaintenanceHarness, ByzantineSpec, MaintenanceHarness, MaintenanceParams,
    MaintenanceReport,
};
use tsa_event::{ExecutionModel, FaultPlan, LatencyModel, NetModel, Topology};
use tsa_obs::ObsHandle;
use tsa_overlay::{Lds, OverlayGraph, Position};
use tsa_routing::{sample_many, uniform_workload, RoutableSeries, RoutingConfig, RoutingSim};
use tsa_sim::{Adversary, Lateness, MetricsHistory, MetricsMode, NodeId, NullAdversary};

use crate::outcome::{
    BaselineOutcome, MaintenanceOutcome, RoutingOutcome, SamplingOutcome, ScenarioOutcome,
};
use crate::spec::{AdversarySpec, BaselineKind, ChurnSpec, ScenarioKind, ScenarioSpec};

/// A fluent, type-safe builder composing every layer of the reproduction.
///
/// Construct with one of the entry points ([`Scenario::maintained_lds`],
/// [`Scenario::baseline`], [`Scenario::routing`], [`Scenario::sampling`]),
/// chain configuration, then call [`Scenario::run`] for a one-shot
/// [`ScenarioOutcome`] or [`Scenario::build`] for a live [`ScenarioRun`].
#[derive(Clone, Debug)]
pub struct Scenario {
    spec: ScenarioSpec,
}

impl Scenario {
    /// The paper's maintained Linearized DeBruijn Swarm over at least `n`
    /// nodes: the full message-level protocol inside the simulator.
    pub fn maintained_lds(n: usize) -> Self {
        Scenario {
            spec: ScenarioSpec::new(ScenarioKind::MaintainedLds, n),
        }
    }

    /// A static Table-1 comparison overlay (default `n = 256`), attacked with
    /// a one-shot churn burst when the scenario runs.
    pub fn baseline(kind: BaselineKind) -> Self {
        Scenario {
            spec: ScenarioSpec::new(ScenarioKind::Baseline(kind), 256),
        }
    }

    /// An `A_ROUTING` workload over a routable series of ideal LDS snapshots.
    pub fn routing(n: usize) -> Self {
        Scenario {
            spec: ScenarioSpec::new(ScenarioKind::Routing, n),
        }
    }

    /// An `A_SAMPLING` uniformity workload over a static LDS snapshot.
    pub fn sampling(n: usize) -> Self {
        Scenario {
            spec: ScenarioSpec::new(ScenarioKind::Sampling, n),
        }
    }

    /// Starts from a fully explicit spec (e.g. one deserialized from a
    /// previous outcome).
    pub fn from_spec(spec: ScenarioSpec) -> Self {
        Scenario { spec }
    }

    /// The current spec.
    pub fn spec(&self) -> &ScenarioSpec {
        &self.spec
    }

    /// Overrides the network-size lower bound `n`.
    pub fn with_n(mut self, n: usize) -> Self {
        self.spec.n = n;
        self
    }

    /// Overrides the robustness parameter `c`.
    pub fn with_c(mut self, c: f64) -> Self {
        self.spec.c = Some(c);
        self
    }

    /// Overrides `δ`, the fresh-node connects per round.
    pub fn with_delta(mut self, delta: usize) -> Self {
        self.spec.delta = Some(delta);
        self
    }

    /// Overrides `τ`, the sampling tokens per round.
    pub fn with_tau(mut self, tau: usize) -> Self {
        self.spec.tau = Some(tau);
        self
    }

    /// Overrides the replication factor `r`.
    pub fn with_replication(mut self, r: usize) -> Self {
        self.spec.replication = Some(r);
        self
    }

    /// Sets the churn budget / join rules.
    pub fn churn(mut self, churn: ChurnSpec) -> Self {
        self.spec.churn = churn;
        self
    }

    /// Sets the attack strategy.
    pub fn adversary(mut self, adversary: AdversarySpec) -> Self {
        self.spec.adversary = adversary;
        self
    }

    /// Sets the adversary lateness (defaults to the paper's `(2, 2λ+7)`).
    pub fn lateness(mut self, lateness: Lateness) -> Self {
        self.spec.lateness = Some(lateness);
        self
    }

    /// Selects the execution engine for a maintained scenario: the
    /// synchronous round model (the default), or the virtual-time event
    /// engine of `tsa-event` under a per-message latency/jitter/loss model.
    /// One-shot kinds ignore it.
    pub fn execution(mut self, execution: ExecutionModel) -> Self {
        self.spec.execution = execution;
        self
    }

    /// Runs a maintained scenario on the event engine under an explicit link
    /// [`Topology`] — regional partitions, scheduled bridges, per-link
    /// overrides. Shorthand for
    /// `execution(self.spec.execution.with_topology(topology))`.
    pub fn topology(mut self, topology: Topology) -> Self {
        self.spec.execution = self.spec.execution.with_topology(topology);
        self
    }

    /// Selects how the engine retains per-round metrics for a maintained
    /// scenario: the full per-round history (the default), or O(1) streaming
    /// accumulators — same [`MetricsSummary`](tsa_sim::MetricsSummary)
    /// digest, no per-round rows in the outcome. One-shot kinds ignore it.
    pub fn metrics_mode(mut self, mode: MetricsMode) -> Self {
        self.spec.metrics = mode;
        self
    }

    /// Installs a fault-injection plan at the message boundary of a
    /// maintained scenario. Faults act where messages are delivered, so a
    /// plan routes the run onto the event engine even under the default
    /// synchronous execution — with a zero-delay network model, which is the
    /// round engine bit for bit. One-shot kinds ignore it.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.spec.faults = Some(plan);
        self
    }

    /// Assigns a byzantine role to the id slice `spec` selects (maintained
    /// scenarios only). Flows through [`MaintenanceParams::with_byzantine`],
    /// so every engine resolves it identically.
    pub fn byzantine(mut self, spec: ByzantineSpec) -> Self {
        self.spec.byzantine = Some(spec);
        self
    }

    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.spec.seed = seed;
        self
    }

    /// Skips the churn-free bootstrap phase before the measured rounds.
    pub fn skip_bootstrap(mut self) -> Self {
        self.spec.bootstrap = false;
        self
    }

    /// Sets the number of messages per node in a routing workload.
    pub fn messages_per_node(mut self, k: usize) -> Self {
        self.spec.messages_per_node = k;
        self
    }

    /// Sets the per-step holder failure probability of a routing workload.
    pub fn holder_failure(mut self, p: f64) -> Self {
        self.spec.holder_failure = p;
        self
    }

    /// Sets the number of attempts in a sampling workload.
    pub fn attempts(mut self, attempts: usize) -> Self {
        self.spec.attempts = attempts;
        self
    }

    /// Sets the workload seed explicitly (defaults to a value derived from
    /// the master seed).
    pub fn workload_seed(mut self, seed: u64) -> Self {
        self.spec.workload_seed = Some(seed);
        self
    }

    /// Builds the live simulator for a maintained scenario.
    ///
    /// # Panics
    ///
    /// Panics for [`ScenarioKind::Baseline`], [`ScenarioKind::Routing`] and
    /// [`ScenarioKind::Sampling`], which are one-shot computations without a
    /// live simulator — use [`Scenario::run`] for those.
    pub fn build(self) -> ScenarioRun {
        assert!(
            matches!(self.spec.kind, ScenarioKind::MaintainedLds),
            "only maintained-LDS scenarios have a live simulator; use Scenario::run \
             for {:?}",
            self.spec.kind
        );
        assert!(
            self.spec.execution.is_rounds(),
            "asynchronous scenarios run to completion on the event engine; use \
             Scenario::run instead of build() for {:?}",
            self.spec.execution
        );
        assert!(
            self.spec.faults.is_none(),
            "fault plans act at the event engine's delivery boundary; use \
             Scenario::run instead of build()"
        );
        let params = self.spec.maintenance_params();
        let rules = self.spec.churn.rules_for(&params);
        let lateness = self
            .spec
            .lateness
            .unwrap_or_else(|| params.paper_lateness());
        let adversary = build_adversary(self.spec.adversary);
        let mut harness =
            MaintenanceHarness::assemble(params, adversary, self.spec.seed, rules, lateness);
        harness.set_metrics_mode(self.spec.metrics);
        ScenarioRun {
            spec: self.spec,
            harness,
            bootstrap_ran: false,
        }
    }

    /// Runs the scenario to completion and returns its outcome.
    ///
    /// For maintained scenarios, `rounds` are executed after the (optional)
    /// bootstrap phase — on the round engine or, for an asynchronous
    /// [`ExecutionModel`], on the event engine. Baseline, routing and
    /// sampling scenarios are one-shot computations: `rounds` is ignored and
    /// reported as 0.
    pub fn run(self, rounds: u64) -> ScenarioOutcome {
        match (self.spec.kind, self.spec.execution.effective_topology()) {
            (ScenarioKind::MaintainedLds, None) if self.spec.faults.is_some() => {
                // Faults act at the delivery boundary, which only the event
                // engine has. A zero-delay model is the round engine bit for
                // bit, so the only difference a fault-free plan makes is the
                // extra network/fault counters in the outcome.
                let topology = Topology::Global(NetModel::new(LatencyModel::constant(0)));
                run_async_maintained(self.spec, topology, rounds)
            }
            (ScenarioKind::MaintainedLds, None) => {
                let mut run = self.build();
                if run.spec.bootstrap {
                    run.run_bootstrap();
                }
                run.run(rounds);
                run.into_outcome()
            }
            (ScenarioKind::MaintainedLds, Some(topology)) => {
                run_async_maintained(self.spec, topology, rounds)
            }
            (ScenarioKind::Baseline(kind), _) => run_baseline(self.spec, kind),
            (ScenarioKind::Routing, _) => run_routing(self.spec),
            (ScenarioKind::Sampling, _) => run_sampling(self.spec),
        }
    }
}

/// Materializes the attack strategy an [`AdversarySpec`] describes.
fn build_adversary(spec: AdversarySpec) -> Box<dyn Adversary> {
    match spec {
        AdversarySpec::Null => Box::new(NullAdversary),
        AdversarySpec::Random { per_round, seed } => {
            Box::new(RandomChurnAdversary::new(per_round, seed))
        }
        AdversarySpec::Targeted { per_round, seed } => {
            Box::new(TargetedSwarmAdversary::new(per_round, seed))
        }
        AdversarySpec::Degree { per_round, seed } => {
            Box::new(DegreeAttackAdversary::new(per_round, seed))
        }
    }
}

/// Runs a maintained scenario on the virtual-time event engine. The outcome
/// has exactly the shape of a round-engine run (the spec's `execution` field
/// is what records the difference), so a zero-delay network model reproduces
/// the round engine's outcome byte for byte.
fn run_async_maintained(spec: ScenarioSpec, topology: Topology, rounds: u64) -> ScenarioOutcome {
    let params = spec.maintenance_params();
    let rules = spec.churn.rules_for(&params);
    let lateness = spec.lateness.unwrap_or_else(|| params.paper_lateness());
    let adversary = build_adversary(spec.adversary);
    let mut harness = AsyncMaintenanceHarness::assemble_with_topology(
        params, adversary, spec.seed, rules, lateness, topology,
    );
    harness.set_metrics_mode(spec.metrics);
    if let Some(plan) = &spec.faults {
        harness.set_faults(plan.clone());
    }
    if spec.bootstrap {
        harness.run_bootstrap();
    }
    harness.run(rounds);
    let report = harness.report();
    let fault_stats = spec.faults.is_some().then(|| harness.fault_stats());
    let max_connect_load = harness.connect_load().values().copied().max().unwrap_or(0);
    let spec_metrics = spec.metrics;
    let bootstrap_rounds = if spec.bootstrap {
        params.bootstrap_rounds()
    } else {
        0
    };
    ScenarioOutcome {
        label: format!(
            "maintained LDS, n = {}, adversary = {}",
            spec.n,
            spec.adversary.label()
        ),
        spec,
        rounds: harness.round().saturating_sub(bootstrap_rounds),
        maintenance: Some(MaintenanceOutcome {
            report,
            metrics_summary: harness.metrics_summary(),
            metrics: match spec_metrics {
                MetricsMode::Full => Some(harness.metrics().clone()),
                MetricsMode::Streaming => None,
            },
            max_connect_load,
            net_stats: Some(harness.net_stats()),
            fault_stats,
        }),
        baseline: None,
        routing: None,
        sampling: None,
    }
}

/// A live maintained-LDS scenario: the protocol running inside the simulator,
/// with the full observation surface of the underlying harness.
pub struct ScenarioRun {
    spec: ScenarioSpec,
    harness: MaintenanceHarness<Box<dyn Adversary>>,
    bootstrap_ran: bool,
}

impl ScenarioRun {
    /// The spec this run was built from.
    pub fn spec(&self) -> &ScenarioSpec {
        &self.spec
    }

    /// The resolved maintenance parameters.
    pub fn params(&self) -> &MaintenanceParams {
        self.harness.params()
    }

    /// The current round.
    pub fn round(&self) -> u64 {
        self.harness.round()
    }

    /// The current overlay epoch.
    pub fn epoch(&self) -> u64 {
        self.harness.epoch()
    }

    /// Number of nodes currently in the network.
    pub fn node_count(&self) -> usize {
        self.harness.node_count()
    }

    /// Runs `rounds` rounds.
    pub fn run(&mut self, rounds: u64) {
        self.harness.run(rounds);
    }

    /// Runs the full churn-free bootstrap phase.
    pub fn run_bootstrap(&mut self) {
        self.harness.run_bootstrap();
        self.bootstrap_ran = true;
    }

    /// Executes a single round.
    pub fn step(&mut self) {
        self.harness.step();
    }

    /// Attaches an observability sink to the underlying harness and engine
    /// (pass [`ObsHandle::off`] to detach).
    pub fn set_obs(&mut self, obs: ObsHandle) {
        self.harness.set_obs(obs);
    }

    /// The health report for the most recently completed round.
    pub fn report(&self) -> MaintenanceReport {
        self.harness.report()
    }

    /// The per-round message metrics.
    pub fn metrics(&self) -> &MetricsHistory {
        self.harness.metrics()
    }

    /// Snapshots of every node's observable state.
    pub fn snapshots(&self) -> Vec<(NodeId, tsa_core::NodeSnapshot)> {
        self.harness.snapshots()
    }

    /// Per-node connect counts of the last round (the Lemma 22 quantity).
    pub fn connect_load(&self) -> std::collections::HashMap<NodeId, usize> {
        self.harness.connect_load()
    }

    /// The ideal-overlay positions of all participating mature nodes.
    pub fn ideal_positions(&self) -> Vec<(NodeId, Position)> {
        self.harness.ideal_positions()
    }

    /// Direct access to the underlying harness.
    pub fn harness(&self) -> &MaintenanceHarness<Box<dyn Adversary>> {
        &self.harness
    }

    /// Finalizes the run into a serializable outcome.
    pub fn into_outcome(self) -> ScenarioOutcome {
        let report = self.harness.report();
        let max_connect_load = self
            .harness
            .connect_load()
            .values()
            .copied()
            .max()
            .unwrap_or(0);
        // Measured rounds exclude the bootstrap phase when it actually ran,
        // so replaying `Scenario::from_spec(spec).run(rounds)` reproduces
        // this outcome exactly. The spec's bootstrap flag is corrected to
        // what happened, for runs driven manually through `build()`.
        let bootstrap_rounds = if self.bootstrap_ran {
            self.harness.params().bootstrap_rounds()
        } else {
            0
        };
        let mut spec = self.spec;
        spec.bootstrap = self.bootstrap_ran;
        let spec_metrics = spec.metrics;
        ScenarioOutcome {
            label: format!(
                "maintained LDS, n = {}, adversary = {}",
                spec.n,
                spec.adversary.label()
            ),
            spec,
            rounds: self.harness.round().saturating_sub(bootstrap_rounds),
            maintenance: Some(MaintenanceOutcome {
                report,
                metrics_summary: self.harness.metrics_summary(),
                metrics: match spec_metrics {
                    MetricsMode::Full => Some(self.harness.metrics().clone()),
                    MetricsMode::Streaming => None,
                },
                max_connect_load,
                // The round engine has no network model, so there are no
                // loss/delay/bridge counters to report — and no delivery
                // boundary, so no fault counters either.
                net_stats: None,
                fault_stats: None,
            }),
            baseline: None,
            routing: None,
            sampling: None,
        }
    }
}

fn run_baseline(spec: ScenarioSpec, kind: BaselineKind) -> ScenarioOutcome {
    let params = spec.overlay_params();
    let nodes: Vec<NodeId> = (0..spec.n as u64).map(NodeId).collect();
    let mut rng = ChaCha8Rng::seed_from_u64(spec.seed);
    let graph: OverlayGraph = match kind {
        BaselineKind::HdGraph => HdGraph::random(nodes, 3, &mut rng).to_graph(),
        BaselineKind::Spartan => {
            SpartanOverlay::build(nodes, params.lambda() as usize, &mut rng).to_graph()
        }
        BaselineKind::ChordSwarm => ChordSwarm::random(params, nodes, &mut rng).to_graph(),
        BaselineKind::StaticLds => Lds::random(params, nodes, &mut rng).to_graph(),
    };
    // A Null adversary attacks nothing, exactly as in maintained scenarios:
    // the trial measures the intact structure (budget 0).
    let budget = match spec.adversary {
        AdversarySpec::Null => 0,
        _ => spec.churn.burst_budget(spec.n),
    };
    let (mode, adversary_seed) = match spec.adversary {
        AdversarySpec::Null => (AttackMode::Random, 0),
        AdversarySpec::Random { seed, .. } => (AttackMode::Random, seed),
        AdversarySpec::Targeted { seed, .. } | AdversarySpec::Degree { seed, .. } => {
            (AttackMode::TargetedNeighborhood, seed)
        }
    };
    // The structure above depends only on the master seed, so two scenarios
    // with the same seed but different adversaries attack the identical
    // graph; the attack's own coin flips honour the adversary seed.
    let mut attack_rng =
        ChaCha8Rng::seed_from_u64(spec.seed.rotate_left(32) ^ adversary_seed ^ 0x4154_5441_434B);
    let resilience = attack_trial(&graph, budget, mode, &mut attack_rng);
    let eclipse_budget = graph
        .vertices()
        .map(|v| graph.out_degree(v))
        .min()
        .unwrap_or(0);
    ScenarioOutcome {
        label: format!("{}, {:?} burst of {budget}", kind.label(), mode),
        spec,
        rounds: 0,
        maintenance: None,
        baseline: Some(BaselineOutcome {
            budget,
            resilience,
            eclipse_budget,
        }),
        routing: None,
        sampling: None,
    }
}

fn run_routing(spec: ScenarioSpec) -> ScenarioOutcome {
    let params = spec.overlay_params();
    let series = RoutableSeries::new(params, spec.seed, (0..spec.n as u64).map(NodeId));
    // An unset replication keeps RoutingConfig's own default rather than
    // inventing a second one here.
    let mut config = RoutingConfig::default()
        .with_holder_failure(spec.holder_failure)
        .with_seed(spec.workload_seed_or_default() ^ 0x524F_5554);
    if let Some(r) = spec.replication {
        config = config.with_replication(r);
    }
    let workload = uniform_workload(
        &series,
        spec.messages_per_node,
        spec.workload_seed_or_default(),
    );
    let report = RoutingSim::new(&series, config).route_all(0, &workload);
    ScenarioOutcome {
        label: format!(
            "A_ROUTING, n = {}, k = {}, holder failure = {}",
            spec.n, spec.messages_per_node, spec.holder_failure
        ),
        spec,
        rounds: 0,
        maintenance: None,
        baseline: None,
        routing: Some(RoutingOutcome {
            lambda: params.lambda(),
            total: report.total,
            delivered: report.delivered,
            delivery_rate: report.delivery_rate(),
            dilation: report.dilation,
            max_congestion: report.max_congestion,
            mean_congestion: report.mean_congestion,
            total_copies: report.total_copies,
            mean_target_coverage: report.mean_target_coverage(),
        }),
        sampling: None,
    }
}

fn run_sampling(spec: ScenarioSpec) -> ScenarioOutcome {
    let params = spec.overlay_params();
    let mut rng = ChaCha8Rng::seed_from_u64(spec.seed);
    let overlay = Lds::random(params, (0..spec.n as u64).map(NodeId), &mut rng);
    let report = sample_many(&overlay, spec.attempts, spec.workload_seed_or_default());
    let (hits_min, hits_max) = report.hit_spread();
    let uni = uniformity(&report.hits, spec.n);
    let distinct = report.distinct_nodes();
    ScenarioOutcome {
        label: format!("A_SAMPLING, n = {}, {} attempts", spec.n, spec.attempts),
        spec,
        rounds: 0,
        maintenance: None,
        baseline: None,
        routing: None,
        sampling: Some(SamplingOutcome {
            attempts: report.attempts,
            discarded: report.discarded,
            discard_rate: report.discard_rate(),
            distinct_nodes: distinct,
            hits_min,
            hits_mean: if distinct == 0 {
                0.0
            } else {
                report.delivered() as f64 / distinct as f64
            },
            hits_max,
            total_variation: uni.total_variation,
            chi_square: uni.chi_square,
            degrees_of_freedom: uni.degrees_of_freedom,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_maintained_scenario_bootstraps_to_routable() {
        let outcome = Scenario::maintained_lds(48)
            .with_c(1.5)
            .with_tau(4)
            .with_replication(2)
            .seed(1)
            .run(6);
        let m = outcome.maintenance.as_ref().expect("maintained outcome");
        assert_eq!(m.report.node_count, 48);
        assert!(outcome.is_routable(), "{:?}", m.report);
        assert!(m.metrics_summary.total_messages_sent > 0);
        assert_eq!(
            m.metrics.as_ref().map(|h| h.summary()),
            Some(m.metrics_summary),
            "digest matches the full history"
        );
    }

    #[test]
    fn compact_drops_the_history_but_keeps_the_digest() {
        let outcome = Scenario::maintained_lds(48)
            .with_c(1.5)
            .with_tau(4)
            .with_replication(2)
            .seed(1)
            .run(4)
            .compact();
        let m = outcome.maintenance.as_ref().unwrap();
        assert!(m.metrics.is_none());
        assert!(m.metrics_summary.rounds > 0);
    }

    #[test]
    fn compact_records_peak_congestion_before_dropping_the_history() {
        // Regression: compacting must re-fold the digest from the per-round
        // rows *before* they are dropped, so a stale digest (e.g. an outcome
        // assembled by hand or from a pre-digest artifact) cannot lose the
        // paper's Lemma 24 congestion claim.
        let outcome = Scenario::maintained_lds(48)
            .with_c(1.5)
            .with_tau(4)
            .with_replication(2)
            .seed(4)
            .run(4);
        let expected = outcome
            .maintenance
            .as_ref()
            .unwrap()
            .metrics
            .as_ref()
            .unwrap()
            .summary();
        assert!(expected.peak_congestion > 0);

        let mut stale = outcome.clone();
        stale.maintenance.as_mut().unwrap().metrics_summary = Default::default();
        let via_compact = stale.clone().compact();
        let via_to_compact = stale.to_compact();
        for compacted in [&via_compact, &via_to_compact] {
            let m = compacted.maintenance.as_ref().unwrap();
            assert!(m.metrics.is_none(), "history dropped");
            assert_eq!(
                m.metrics_summary, expected,
                "digest re-folded from the history before the drop"
            );
        }
    }

    #[test]
    fn streaming_metrics_mode_drops_the_rows_but_pins_the_digest() {
        let base = || {
            Scenario::maintained_lds(48)
                .with_c(1.5)
                .with_tau(4)
                .with_replication(2)
                .seed(11)
        };
        let full = base().run(6);
        let streaming = base().metrics_mode(MetricsMode::Streaming).run(6);
        let fm = full.maintenance.as_ref().unwrap();
        let sm = streaming.maintenance.as_ref().unwrap();
        assert!(fm.metrics.is_some() && sm.metrics.is_none());
        assert_eq!(
            fm.metrics_summary, sm.metrics_summary,
            "streaming accumulators must fold to the full-history digest"
        );
        assert_eq!(
            serde_json::to_string(&fm.report).unwrap(),
            serde_json::to_string(&sm.report).unwrap(),
            "the metrics mode must not perturb the run itself"
        );
        // ... and the same holds on the event engine.
        use tsa_event::LatencyModel;
        let async_base = || {
            base().execution(
                ExecutionModel::asynchronous(LatencyModel::uniform(0, 1500)).with_loss(0.02),
            )
        };
        let afull = async_base().run(6);
        let astream = async_base().metrics_mode(MetricsMode::Streaming).run(6);
        assert_eq!(
            afull.maintenance.as_ref().unwrap().metrics_summary,
            astream.maintenance.as_ref().unwrap().metrics_summary
        );
        assert!(astream.maintenance.unwrap().metrics.is_none());
    }

    #[test]
    fn scenario_run_exposes_the_harness_surface() {
        let mut run = Scenario::maintained_lds(48)
            .with_c(1.5)
            .with_tau(4)
            .with_replication(2)
            .seed(2)
            .build();
        run.run_bootstrap();
        run.run(4);
        assert_eq!(run.node_count(), 48);
        assert_eq!(run.snapshots().len(), 48);
        assert!(run.round() > 0);
        let outcome = run.into_outcome();
        assert!(outcome.maintenance.is_some());
    }

    #[test]
    fn baseline_scenarios_measure_resilience() {
        for kind in [
            BaselineKind::HdGraph,
            BaselineKind::Spartan,
            BaselineKind::ChordSwarm,
            BaselineKind::StaticLds,
        ] {
            let outcome = Scenario::baseline(kind)
                .with_n(128)
                .churn(ChurnSpec::budget(32))
                .adversary(AdversarySpec::targeted(1, 9))
                .seed(3)
                .run(0);
            let b = outcome.baseline.expect("baseline outcome");
            assert_eq!(b.budget, 32);
            assert_eq!(b.resilience.nodes_before, 128);
            assert!(b.eclipse_budget > 0, "{kind:?} has isolated nodes");
        }
    }

    #[test]
    fn baseline_attacks_honour_the_adversary_seed_but_share_the_structure() {
        let base = Scenario::baseline(BaselineKind::HdGraph)
            .with_n(96)
            .churn(ChurnSpec::budget(24))
            .seed(8);
        let a = base.clone().adversary(AdversarySpec::random(1, 1)).run(0);
        let b = base.adversary(AdversarySpec::random(1, 2)).run(0);
        let (ab, bb) = (a.baseline.unwrap(), b.baseline.unwrap());
        // Same master seed → identical structure (eclipse budget is a pure
        // function of the graph).
        assert_eq!(ab.eclipse_budget, bb.eclipse_budget);
        // Different adversary seeds → different random removals. Removed
        // counts match (both spend the budget), but the survivors differ.
        assert_eq!(ab.resilience.removed, bb.resilience.removed);
        let same = Scenario::baseline(BaselineKind::HdGraph)
            .with_n(96)
            .churn(ChurnSpec::budget(24))
            .seed(8)
            .adversary(AdversarySpec::random(1, 1))
            .run(0);
        assert_eq!(
            same.baseline.unwrap().resilience.isolated_survivors,
            ab.resilience.isolated_survivors,
            "identical specs must reproduce identical trials"
        );
    }

    #[test]
    fn routing_default_replication_matches_routing_config_default() {
        let via_scenario = Scenario::routing(128).seed(3).run(0);
        let series = RoutableSeries::new(
            tsa_overlay::OverlayParams::with_default_c(128),
            3,
            (0..128u64).map(NodeId),
        );
        let spec = Scenario::routing(128).seed(3).spec().clone();
        let config =
            RoutingConfig::default().with_seed(spec.workload_seed_or_default() ^ 0x524F_5554);
        let direct = RoutingSim::new(&series, config).route_all(
            0,
            &uniform_workload(&series, 1, spec.workload_seed_or_default()),
        );
        let r = via_scenario.routing.unwrap();
        assert_eq!(r.total_copies, direct.total_copies);
        assert_eq!(r.delivered, direct.delivered);
    }

    #[test]
    fn routing_scenario_reports_exact_dilation() {
        let outcome = Scenario::routing(128)
            .with_replication(4)
            .holder_failure(0.25)
            .messages_per_node(1)
            .seed(7)
            .run(0);
        let r = outcome.routing.expect("routing outcome");
        assert_eq!(r.dilation, 2 * r.lambda as u64 + 2);
        assert!(r.delivery_rate > 0.9, "delivery {}", r.delivery_rate);
    }

    #[test]
    fn sampling_scenario_hits_every_node() {
        let outcome = Scenario::sampling(128).attempts(50_000).seed(5).run(0);
        let s = outcome.sampling.expect("sampling outcome");
        assert_eq!(s.distinct_nodes, 128);
        assert!(s.discard_rate < 0.6);
        assert!(s.total_variation < 0.1);
    }

    #[test]
    fn build_panics_for_one_shot_kinds() {
        let result = std::panic::catch_unwind(|| Scenario::routing(64).build());
        assert!(result.is_err());
    }

    #[test]
    fn build_panics_for_async_execution() {
        use tsa_event::LatencyModel;
        let result = std::panic::catch_unwind(|| {
            Scenario::maintained_lds(48)
                .execution(ExecutionModel::asynchronous(LatencyModel::constant(500)))
                .build()
        });
        assert!(
            result.is_err(),
            "async scenarios have no live round harness"
        );
    }

    #[test]
    fn zero_delay_async_outcome_matches_the_round_engine_byte_for_byte() {
        use tsa_event::LatencyModel;
        let base = || {
            Scenario::maintained_lds(48)
                .with_c(1.5)
                .with_tau(4)
                .with_replication(2)
                .seed(21)
        };
        let sync = base().run(6);
        let asynch = base()
            .execution(ExecutionModel::asynchronous(LatencyModel::constant(0)))
            .run(6);
        // The spec's execution field and the network-effect counters (only
        // asynchronous runs have a network model to count) are the *only*
        // differences.
        let mut normalized = asynch.clone();
        normalized.spec.execution = ExecutionModel::Rounds;
        let net_stats = normalized
            .maintenance
            .as_mut()
            .and_then(|m| m.net_stats.take())
            .expect("async outcomes carry network counters");
        assert_eq!(
            serde_json::to_string(&normalized).unwrap(),
            serde_json::to_string(&sync).unwrap(),
            "zero-delay async must reproduce the round engine exactly"
        );
        assert!(net_stats.sent > 0);
        assert_eq!(net_stats.lost, 0, "a lossless model loses nothing");
        assert!(!serde_json::to_string(&sync).unwrap().contains("execution"));
        assert!(serde_json::to_string(&asynch)
            .unwrap()
            .contains("execution"));
    }

    #[test]
    fn only_async_outcomes_expose_network_counters() {
        use tsa_event::{LatencyModel, NetModel, RegionAssign, Topology};
        let base = || {
            Scenario::maintained_lds(48)
                .with_c(1.5)
                .with_tau(4)
                .with_replication(2)
                .seed(9)
        };
        let sync = base().run(4);
        assert!(
            !serde_json::to_string(&sync).unwrap().contains("net_stats"),
            "round-engine outcomes must stay byte-stable: no net_stats key"
        );
        assert!(sync.maintenance.unwrap().net_stats.is_none());

        // A two-region topology with a lossy bridge: the cross-region
        // counters must surface in the outcome, and survive compaction into
        // BENCH artifacts.
        let intra = NetModel::new(LatencyModel::uniform(0, 800));
        let inter = NetModel {
            latency: LatencyModel::uniform(400, 1600),
            jitter: 0,
            loss: 0.05,
        };
        let asynch = base()
            .topology(Topology::regions(RegionAssign::halves(24), intra, inter))
            .run(4);
        let stats = asynch
            .to_compact()
            .maintenance
            .expect("maintained outcome")
            .net_stats
            .expect("async outcomes carry network counters");
        assert!(stats.sent > 0);
        assert!(
            stats.bridge_sent > 0,
            "a partitioned topology must route cross-region traffic"
        );
        assert!(stats.bridge_lost <= stats.bridge_sent);
        assert!(serde_json::to_string(&asynch)
            .unwrap()
            .contains("bridge_sent"));
    }

    #[test]
    fn an_empty_fault_plan_reproduces_the_round_engine_byte_for_byte() {
        // The scenario-level zero-fault anchor: installing FaultPlan::default()
        // routes the run onto the event engine with a zero-delay model, whose
        // only trace in the outcome is the spec's own `faults` field and the
        // extra (all-zero fault, zero-loss network) counters.
        use tsa_event::FaultPlan;
        let base = || {
            Scenario::maintained_lds(48)
                .with_c(1.5)
                .with_tau(4)
                .with_replication(2)
                .seed(21)
        };
        let sync = base().run(6);
        let faulted = base().faults(FaultPlan::default()).run(6);
        let mut normalized = faulted.clone();
        normalized.spec.faults = None;
        let m = normalized.maintenance.as_mut().unwrap();
        let net_stats = m.net_stats.take().expect("fault runs carry net counters");
        let fault_stats = m
            .fault_stats
            .take()
            .expect("fault runs carry fault counters");
        assert_eq!(
            serde_json::to_string(&normalized).unwrap(),
            serde_json::to_string(&sync).unwrap(),
            "an empty plan must not perturb the run"
        );
        assert_eq!(fault_stats.total(), 0, "an empty plan injects nothing");
        assert_eq!(net_stats.lost, 0);
    }

    #[test]
    fn a_drop_all_plan_perturbs_the_run_and_counts_its_drops() {
        use tsa_event::{FaultAction, FaultPlan, FaultRule};
        let base = || {
            Scenario::maintained_lds(48)
                .with_c(1.5)
                .with_tau(4)
                .with_replication(2)
                .seed(21)
        };
        let sync = base().run(6);
        let plan = FaultPlan::new().with_rule(
            FaultRule::every(FaultAction::Drop)
                .with_prob(0.05)
                .in_window(tsa_event::RoundWindow::starting_at(2)),
        );
        let faulted = base().faults(plan).run(6);
        let m = faulted.maintenance.as_ref().unwrap();
        let fs = m.fault_stats.expect("fault counters present");
        assert!(fs.dropped > 0, "a 5% drop plan must fire: {fs:?}");
        assert_eq!(
            fs.dropped,
            m.net_stats.unwrap().lost,
            "on a lossless model every lost message is an injected drop"
        );
        assert_ne!(
            m.metrics_summary,
            sync.maintenance.unwrap().metrics_summary,
            "dropping maintenance traffic must perturb the run"
        );
        // ... and the outcome replays from its own spec.
        let replay = Scenario::from_spec(faulted.spec.clone()).run(faulted.rounds);
        assert_eq!(
            serde_json::to_string(&replay).unwrap(),
            serde_json::to_string(&faulted).unwrap(),
            "fault outcomes replay from their embedded spec"
        );
    }

    #[test]
    fn byzantine_scenarios_run_on_all_engines_and_replay_from_their_spec() {
        use tsa_core::{ByzantineSpec, MisbehaviorKind};
        use tsa_event::LatencyModel;
        let byz = ByzantineSpec::fraction(1, 8, MisbehaviorKind::ForgedPosition);
        let base = || {
            Scenario::maintained_lds(48)
                .with_c(1.5)
                .with_tau(4)
                .with_replication(2)
                .seed(13)
                .byzantine(byz)
        };
        // Round engine.
        let sync = base().run(6);
        assert_eq!(sync.spec.byzantine, Some(byz));
        assert_eq!(
            sync.maintenance.as_ref().unwrap().report.node_count,
            48,
            "byzantine nodes still occupy their slots"
        );
        // Event engine at zero delay: byzantine behaviour is part of the
        // node program, so the two engines coincide exactly as they do for
        // honest runs.
        let asynch = base()
            .execution(ExecutionModel::asynchronous(LatencyModel::constant(0)))
            .run(6);
        assert_eq!(
            serde_json::to_string(&sync.maintenance.as_ref().unwrap().report).unwrap(),
            serde_json::to_string(&asynch.maintenance.as_ref().unwrap().report).unwrap(),
            "zero-delay byzantine runs coincide across engines"
        );
        // A forged-position run must actually differ from the honest run.
        let honest = Scenario::maintained_lds(48)
            .with_c(1.5)
            .with_tau(4)
            .with_replication(2)
            .seed(13)
            .run(6);
        assert_ne!(
            sync.maintenance.as_ref().unwrap().metrics_summary,
            honest.maintenance.unwrap().metrics_summary,
            "an eighth of the network forging positions must leave a trace"
        );
        // ... and the outcome replays from its own spec.
        let replay = Scenario::from_spec(sync.spec.clone()).run(sync.rounds);
        assert_eq!(
            serde_json::to_string(&replay).unwrap(),
            serde_json::to_string(&sync).unwrap()
        );
    }

    #[test]
    fn build_panics_for_fault_plans() {
        use tsa_event::{FaultAction, FaultPlan, FaultRule};
        let result = std::panic::catch_unwind(|| {
            Scenario::maintained_lds(48)
                .faults(FaultPlan::new().with_rule(FaultRule::every(FaultAction::Drop)))
                .build()
        });
        assert!(result.is_err(), "fault plans need the event engine");
    }

    #[test]
    fn heavy_latency_async_runs_diverge_but_stay_well_formed() {
        use tsa_event::LatencyModel;
        let outcome = Scenario::maintained_lds(48)
            .with_c(1.5)
            .with_tau(4)
            .with_replication(2)
            .seed(21)
            .execution(ExecutionModel::asynchronous(LatencyModel::uniform(0, 2500)).with_loss(0.05))
            .run(6);
        let m = outcome.maintenance.as_ref().expect("maintained outcome");
        assert_eq!(m.report.node_count, 48);
        assert!(m.metrics_summary.total_messages_sent > 0);
        // Multi-round delays + loss must actually perturb the run.
        let sync = Scenario::maintained_lds(48)
            .with_c(1.5)
            .with_tau(4)
            .with_replication(2)
            .seed(21)
            .run(6);
        assert_ne!(
            m.metrics_summary,
            sync.maintenance.unwrap().metrics_summary,
            "2.5-round delays with loss cannot be trace-identical to sync"
        );
        // The outcome replays from its own spec.
        let replay = Scenario::from_spec(outcome.spec.clone()).run(outcome.rounds);
        assert_eq!(
            serde_json::to_string(&replay).unwrap(),
            serde_json::to_string(&outcome).unwrap(),
            "async outcomes replay from their embedded spec"
        );
    }
}
