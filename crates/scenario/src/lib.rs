//! # tsa-scenario — one fluent entry point for every experiment
//!
//! Every layer of the reproduction — overlay parameters, maintenance
//! protocol, churn rules, adversary strategy, lateness, routing and sampling
//! workloads, and the Table-1 baseline structures — is composed behind a
//! single type-safe builder:
//!
//! ```
//! use tsa_scenario::{AdversarySpec, ChurnSpec, Scenario};
//!
//! let outcome = Scenario::maintained_lds(48)
//!     .with_c(1.5)
//!     .with_tau(4)
//!     .with_replication(2)
//!     .churn(ChurnSpec::budget(12))
//!     .adversary(AdversarySpec::targeted(2, 6))
//!     .seed(11)
//!     .run(40);
//! assert!(outcome.maintenance.is_some());
//! ```
//!
//! [`Scenario::run`] executes the whole scenario and returns a
//! serde-serializable [`ScenarioOutcome`] (the experiment binaries dump these
//! as `BENCH_*.json`); [`Scenario::build`] instead hands back a live
//! [`ScenarioRun`] for experiments that need to observe the overlay while it
//! runs. The old `MaintenanceHarness` constructors are deprecated thin
//! wrappers over the same plumbing, so fixed seeds produce byte-identical
//! reports through either path.

#![warn(missing_docs)]

pub mod builder;
pub mod outcome;
pub mod spec;

pub use builder::{Scenario, ScenarioRun};
pub use outcome::{
    BaselineOutcome, MaintenanceOutcome, RoutingOutcome, SamplingOutcome, ScenarioOutcome,
};
pub use spec::{AdversarySpec, BaselineKind, ChurnSpec, ScenarioKind, ScenarioSpec};
