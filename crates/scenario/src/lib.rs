//! # tsa-scenario — one fluent entry point for every experiment
//!
//! Every layer of the reproduction — overlay parameters, maintenance
//! protocol, churn rules, adversary strategy, lateness, routing and sampling
//! workloads, and the Table-1 baseline structures — is composed behind a
//! single type-safe builder:
//!
//! ```
//! use tsa_scenario::{AdversarySpec, ChurnSpec, Scenario};
//!
//! let outcome = Scenario::maintained_lds(48)
//!     .with_c(1.5)
//!     .with_tau(4)
//!     .with_replication(2)
//!     .churn(ChurnSpec::budget(12))
//!     .adversary(AdversarySpec::targeted(2, 6))
//!     .seed(11)
//!     .run(40);
//! assert!(outcome.maintenance.is_some());
//! ```
//!
//! [`Scenario::run`] executes the whole scenario and returns a
//! serde-serializable [`ScenarioOutcome`] (the experiment binaries dump these
//! as `BENCH_*.json`); [`Scenario::build`] instead hands back a live
//! [`ScenarioRun`] for experiments that need to observe the overlay while it
//! runs. The builder sits directly on `MaintenanceHarness::assemble`, so
//! fixed seeds produce byte-identical reports through either path.
//!
//! Maintained scenarios additionally choose their *execution engine* through
//! [`ExecutionModel`]: the synchronous round model (default), or the
//! virtual-time event engine of `tsa-event` under a per-message
//! latency/jitter/loss model:
//!
//! ```no_run
//! use tsa_scenario::{ExecutionModel, LatencyModel, Scenario};
//!
//! let outcome = Scenario::maintained_lds(48)
//!     .with_c(1.5)
//!     .with_tau(4)
//!     .with_replication(2)
//!     .execution(ExecutionModel::asynchronous(LatencyModel::uniform(200, 1800)))
//!     .seed(7)
//!     .run(8);
//! assert!(outcome.maintenance.is_some());
//! ```

#![deny(missing_docs)]

pub mod builder;
pub mod outcome;
pub mod spec;

pub use builder::{Scenario, ScenarioRun};
pub use outcome::{
    BaselineOutcome, MaintenanceOutcome, RoutingOutcome, SamplingOutcome, ScenarioOutcome,
};
pub use spec::{AdversarySpec, BaselineKind, ChurnSpec, ScenarioKind, ScenarioSpec};
// The execution-model and fault-injection vocabulary every spec embeds,
// re-exported so scenario consumers need no direct tsa-event dependency.
pub use tsa_event::{
    ExecutionModel, FaultAction, FaultPlan, FaultRule, FaultStats, LatencyModel, LinkOverride,
    NetModel, NetStats, NodeSelector, PartitionSchedule, RegionAssign, RegionEntry, RoundWindow,
    Topology,
};
// The byzantine-role vocabulary, re-exported for the same reason.
pub use tsa_core::{ByzantineSpec, MisbehaviorKind};
// The metrics-mode vocabulary every spec embeds, re-exported for the same
// reason.
pub use tsa_sim::MetricsMode;
