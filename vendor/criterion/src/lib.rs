//! Offline shim for the subset of `criterion` this workspace uses.
//!
//! Provides a small wall-clock timing harness behind the criterion API:
//! benchmark groups, `bench_function` / `bench_with_input`, `Bencher::iter`
//! and the `criterion_group!` / `criterion_main!` macros. Each benchmark runs
//! a short calibration pass, then `sample_size` timed samples, and prints the
//! median time per iteration. No statistics, plots or baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// An identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id rendering just the parameter value (e.g. a size).
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId(parameter.to_string())
    }

    /// An id with a function name and a parameter.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId(name.to_string())
    }
}

/// Runs closures and measures their wall-clock time.
pub struct Bencher {
    samples: usize,
    /// Median nanoseconds per iteration of the last `iter` call.
    last_median_ns: f64,
}

impl Bencher {
    /// Times `routine`, printing nothing; results are reported by the caller.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: how many iterations fit in ~1ms?
        let start = Instant::now();
        let mut calibration_iters = 0u64;
        while start.elapsed() < Duration::from_millis(1) {
            std::hint::black_box(routine());
            calibration_iters += 1;
        }
        let per_sample = calibration_iters.max(1);
        let mut samples: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..per_sample {
                std::hint::black_box(routine());
            }
            samples.push(t0.elapsed().as_nanos() as f64 / per_sample as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.last_median_ns = samples[samples.len() / 2];
    }
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, id: &str, samples: usize, mut f: F) {
    let mut bencher = Bencher {
        samples,
        last_median_ns: 0.0,
    };
    f(&mut bencher);
    let ns = bencher.last_median_ns;
    let (value, unit) = if ns >= 1e9 {
        (ns / 1e9, "s")
    } else if ns >= 1e6 {
        (ns / 1e6, "ms")
    } else if ns >= 1e3 {
        (ns / 1e3, "µs")
    } else {
        (ns, "ns")
    };
    if group.is_empty() {
        println!("{id:<40} {value:>10.3} {unit}/iter");
    } else {
        println!("{group}/{id:<32} {value:>10.3} {unit}/iter");
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&self.name, &id.0, self.sample_size, |b| f(b, input));
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<ID: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: ID,
        f: F,
    ) -> &mut Self {
        run_one(&self.name, &id.into().0, self.sample_size, f);
        self
    }

    /// Finishes the group (a no-op in this shim).
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Benchmarks a single function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one("", id, 10, f);
        self
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::from_parameter(8), &8u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }
}
