//! Offline shim for the subset of the `rand` 0.8 API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal, API-compatible implementation: [`RngCore`] / [`SeedableRng`] /
//! [`Rng`] traits, integer/float/bool sampling, ranges, and the
//! [`seq::SliceRandom`] helpers (`choose`, `choose_multiple`, `shuffle`).
//!
//! It is **not** a drop-in statistical replacement for the real `rand` crate —
//! streams differ from upstream — but every consumer in this repository only
//! requires a deterministic, well-mixed generator, which this provides.

/// A random number generator core: a source of uniformly distributed bits.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut i = 0;
        while i < dest.len() {
            let word = self.next_u64().to_le_bytes();
            let take = (dest.len() - i).min(8);
            dest[i..i + take].copy_from_slice(&word[..take]);
            i += take;
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a 64-bit seed by key-stretching it across the
    /// full seed with SplitMix64 (the same construction rand 0.8 uses).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut z = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut w = z;
            w = (w ^ (w >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            w = (w ^ (w >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            w ^= w >> 31;
            let bytes = w.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be sampled uniformly from an RNG via [`Rng::gen`].
pub trait StandardSample {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniformly random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform draw from `[0, bound)` without modulo bias (Lemire-style widening
/// multiply with a rejection loop).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample from an empty range");
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from an empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full integer domain.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience sampling methods available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    //! Sequence-related helpers (`choose`, `choose_multiple`, `shuffle`).

    use super::{uniform_below, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Returns one uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Returns `amount` distinct elements in random order (fewer if the
        /// slice is shorter than `amount`).
        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_below(rng, self.len() as u64) as usize])
            }
        }

        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&T> {
            let amount = amount.min(self.len());
            // Partial Fisher–Yates over an index vector.
            let mut indices: Vec<usize> = (0..self.len()).collect();
            for i in 0..amount {
                let j = i + uniform_below(rng, (indices.len() - i) as u64) as usize;
                indices.swap(i, j);
            }
            indices
                .into_iter()
                .take(amount)
                .map(|i| &self[i])
                .collect::<Vec<&T>>()
                .into_iter()
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_below(rng, (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }
    }
}

/// The pieces most users want in scope.
pub mod prelude {
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = Counter(7);
        for _ in 0..1000 {
            let v: u64 = r.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: u32 = r.gen_range(0..=5);
            assert!(w <= 5);
            let f: f64 = r.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn unit_floats_are_in_range() {
        let mut r = Counter(3);
        for _ in 0..1000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn choose_multiple_returns_distinct_elements() {
        let mut r = Counter(11);
        let xs: Vec<u32> = (0..50).collect();
        let picked: Vec<u32> = xs.choose_multiple(&mut r, 10).copied().collect();
        assert_eq!(picked.len(), 10);
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10, "elements must be distinct");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Counter(13);
        let mut xs: Vec<u32> = (0..64).collect();
        xs.shuffle(&mut r);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<u32>>());
        assert_ne!(
            xs, sorted,
            "a 64-element shuffle should not be the identity"
        );
    }
}
