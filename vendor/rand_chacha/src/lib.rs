//! Offline shim for `rand_chacha`: a real ChaCha8 keystream generator behind
//! the `ChaCha8Rng` name, implementing the shim `rand` traits.
//!
//! The keystream is genuine ChaCha with 8 double-rounds, so its statistical
//! quality matches the upstream crate; only the word-serialization order of
//! the upstream wrapper is not replicated (no consumer in this workspace
//! depends on upstream-exact streams, only on determinism).

use rand::{RngCore, SeedableRng};

/// A deterministic random number generator based on the ChaCha8 stream cipher.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buffer: [u32; 16],
    index: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let initial = state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds of column + diagonal quarter rounds.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, init) in state.iter_mut().zip(initial.iter()) {
            *out = out.wrapping_add(*init);
        }
        self.buffer = state;
        self.index = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        ChaCha8Rng {
            key,
            counter: 0,
            buffer: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn floats_look_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }

    #[test]
    fn clone_continues_identically() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        a.next_u64();
        let mut b = a.clone();
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
