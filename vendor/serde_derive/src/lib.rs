//! Offline shim for `serde_derive`: derive macros for the value-tree-based
//! `Serialize` / `Deserialize` traits of the vendored `serde` shim.
//!
//! Implemented without `syn`/`quote` (unavailable offline): the item is parsed
//! directly from the `proc_macro` token stream. Supported shapes — everything
//! this workspace derives on:
//!
//! * structs with named fields (serialized as objects in declaration order);
//! * tuple structs with one field (serialized transparently, newtype-style)
//!   or several fields (serialized as arrays);
//! * enums with unit variants (serialized as the variant-name string),
//!   single-field tuple variants (`{"Variant": value}`) and named-field
//!   variants (`{"Variant": {..fields}}`), i.e. serde's external tagging;
//! * the field attributes `#[serde(default)]` (a missing key deserializes to
//!   `Default::default()`) and `#[serde(skip_serializing_if = "path")]`
//!   (the field is omitted when `path(&field)` is true) on named-struct
//!   fields *and* on the named fields of enum variants — the pair that lets
//!   a type grow a field without changing the serialized form of old values.
//!
//! Generic types and any other serde attributes are not supported and fail
//! loudly.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Item {
    NamedStruct {
        name: String,
        fields: Vec<Field>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// A named field together with its recognized serde attributes.
#[derive(Debug)]
struct Field {
    name: String,
    /// `#[serde(default)]`: a missing key deserializes to `Default::default()`.
    default: bool,
    /// `#[serde(skip_serializing_if = "path")]`: omit the field when
    /// `path(&self.field)` is true.
    skip_if: Option<String>,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

/// Consumes leading attributes (`#[...]`) from `tokens[*pos]`.
fn skip_attributes(tokens: &[TokenTree], pos: &mut usize) {
    while *pos < tokens.len() {
        match &tokens[*pos] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                *pos += 1; // '#'
                if *pos < tokens.len() {
                    if let TokenTree::Punct(p) = &tokens[*pos] {
                        if p.as_char() == '!' {
                            *pos += 1; // inner attribute '!'
                        }
                    }
                }
                match &tokens[*pos] {
                    TokenTree::Group(g) if g.delimiter() == Delimiter::Bracket => *pos += 1,
                    other => panic!("expected [...] after '#', got {other}"),
                }
            }
            _ => break,
        }
    }
}

/// Consumes an optional visibility modifier (`pub`, `pub(crate)`, ...).
fn skip_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*pos) {
        if id.to_string() == "pub" {
            *pos += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*pos) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *pos += 1;
                }
            }
        }
    }
}

/// Parses the contents of one `#[serde(...)]` attribute group into `field`.
/// Only `default` and `skip_serializing_if = "path"` are recognized; anything
/// else fails loudly rather than being silently ignored.
fn parse_serde_attr(group: &proc_macro::Group, field: &mut Field) {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut pos = 0;
    while pos < tokens.len() {
        let key = match &tokens[pos] {
            TokenTree::Ident(id) => id.to_string(),
            TokenTree::Punct(p) if p.as_char() == ',' => {
                pos += 1;
                continue;
            }
            other => panic!("unsupported serde attribute token {other}"),
        };
        pos += 1;
        match key.as_str() {
            "default" => {
                // Bare `default` only; `default = "path"` is not supported.
                if let Some(TokenTree::Punct(p)) = tokens.get(pos) {
                    if p.as_char() == '=' {
                        panic!("the serde shim supports only bare `default`");
                    }
                }
                field.default = true;
            }
            "skip_serializing_if" => {
                match tokens.get(pos) {
                    Some(TokenTree::Punct(p)) if p.as_char() == '=' => pos += 1,
                    other => panic!("expected `=` after skip_serializing_if, got {other:?}"),
                }
                let path = match tokens.get(pos) {
                    Some(TokenTree::Literal(lit)) => {
                        let s = lit.to_string();
                        s.trim_matches('"').to_string()
                    }
                    other => panic!("expected a string literal path, got {other:?}"),
                };
                pos += 1;
                field.skip_if = Some(path);
            }
            other => panic!("unsupported serde attribute `{other}` (shim supports `default` and `skip_serializing_if`)"),
        }
    }
}

/// Consumes leading field attributes, interpreting `#[serde(...)]` ones.
fn parse_field_attrs(tokens: &[TokenTree], pos: &mut usize, field: &mut Field) {
    while *pos < tokens.len() {
        match &tokens[*pos] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                *pos += 1; // '#'
                match &tokens[*pos] {
                    TokenTree::Group(g) if g.delimiter() == Delimiter::Bracket => {
                        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                        if let (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args))) =
                            (inner.first(), inner.get(1))
                        {
                            if id.to_string() == "serde"
                                && args.delimiter() == Delimiter::Parenthesis
                            {
                                parse_serde_attr(args, field);
                            }
                        }
                        *pos += 1;
                    }
                    other => panic!("expected [...] after '#', got {other}"),
                }
            }
            _ => break,
        }
    }
}

fn parse_named_fields(group: &proc_macro::Group) -> Vec<Field> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut pos = 0;
    let mut fields = Vec::new();
    while pos < tokens.len() {
        let mut field = Field {
            name: String::new(),
            default: false,
            skip_if: None,
        };
        parse_field_attrs(&tokens, &mut pos, &mut field);
        skip_visibility(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let name = match &tokens[pos] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected field name, got {other}"),
        };
        pos += 1;
        match &tokens[pos] {
            TokenTree::Punct(p) if p.as_char() == ':' => pos += 1,
            other => panic!("expected ':' after field `{name}`, got {other}"),
        }
        // Skip the type: everything until a ',' at angle-bracket depth 0.
        let mut depth = 0i32;
        while pos < tokens.len() {
            match &tokens[pos] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    pos += 1;
                    break;
                }
                _ => {}
            }
            pos += 1;
        }
        field.name = name;
        fields.push(field);
    }
    fields
}

fn tuple_arity(group: &proc_macro::Group) -> usize {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut arity = 1;
    let mut depth = 0i32;
    let mut saw_tokens_since_comma = false;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                arity += 1;
                saw_tokens_since_comma = false;
                continue;
            }
            _ => {}
        }
        saw_tokens_since_comma = true;
    }
    if !saw_tokens_since_comma {
        arity -= 1; // trailing comma
    }
    arity
}

fn parse_variants(group: &proc_macro::Group) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut pos = 0;
    let mut variants = Vec::new();
    while pos < tokens.len() {
        skip_attributes(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let name = match &tokens[pos] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected variant name, got {other}"),
        };
        pos += 1;
        let kind = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                VariantKind::Named(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                VariantKind::Tuple(tuple_arity(g))
            }
            _ => VariantKind::Unit,
        };
        if let Some(TokenTree::Punct(p)) = tokens.get(pos) {
            if p.as_char() == '=' {
                panic!("explicit enum discriminants are not supported by the serde shim");
            }
            if p.as_char() == ',' {
                pos += 1;
            }
        }
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    skip_attributes(&tokens, &mut pos);
    skip_visibility(&tokens, &mut pos);
    let keyword = match &tokens[pos] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected `struct` or `enum`, got {other}"),
    };
    pos += 1;
    let name = match &tokens[pos] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected item name, got {other}"),
    };
    pos += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(pos) {
        if p.as_char() == '<' {
            panic!("generic types are not supported by the serde shim (deriving on `{name}`)");
        }
    }
    match keyword.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::NamedStruct {
                name,
                fields: parse_named_fields(g),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct {
                    name,
                    arity: tuple_arity(g),
                }
            }
            other => panic!("unsupported struct shape for `{name}`: {other:?}"),
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: parse_variants(g),
            },
            other => panic!("expected enum body for `{name}`, got {other:?}"),
        },
        other => panic!("cannot derive serde traits for `{other}` items"),
    }
}

/// Derives the value-tree `Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::NamedStruct { name, fields } => {
            let mut pushes = String::new();
            for f in fields {
                let fname = &f.name;
                let push = format!(
                    "entries.push((\"{fname}\".to_string(), ::serde::Serialize::to_value(&self.{fname})));\n"
                );
                match &f.skip_if {
                    Some(path) => {
                        pushes.push_str(&format!("if !{path}(&self.{fname}) {{ {push} }}\n"))
                    }
                    None => pushes.push_str(&push),
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::value::Value {{\n\
                         let mut entries: Vec<(String, ::serde::value::Value)> = Vec::new();\n\
                         {pushes}\
                         ::serde::value::Value::Object(entries)\n\
                     }}\n\
                 }}"
            )
        }
        Item::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::value::Value {{\n\
                     ::serde::Serialize::to_value(&self.0)\n\
                 }}\n\
             }}"
        ),
        Item::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::value::Value {{\n\
                         ::serde::value::Value::Array(vec![{}])\n\
                     }}\n\
                 }}",
                items.join(", ")
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::value::Value::Str(\"{vn}\".to_string()),\n"
                    )),
                    VariantKind::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(x0) => ::serde::value::Value::Object(vec![(\
                             \"{vn}\".to_string(), ::serde::Serialize::to_value(x0))]),\n"
                    )),
                    VariantKind::Tuple(arity) => {
                        let binders: Vec<String> = (0..*arity).map(|i| format!("x{i}")).collect();
                        let values: Vec<String> = binders
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::value::Value::Object(vec![(\
                                 \"{vn}\".to_string(), ::serde::value::Value::Array(vec![{}]))]),\n",
                            binders.join(", "),
                            values.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let names: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let binders = names.join(", ");
                        // The binders of a `match &self` arm are references,
                        // so a `skip_serializing_if` path receives the same
                        // `&field` shape as in the named-struct codegen. The
                        // collector is double-underscored so it can never
                        // shadow a variant field binder.
                        let mut pushes = String::new();
                        for f in fields {
                            let fname = &f.name;
                            let push = format!(
                                "__entries.push((\"{fname}\".to_string(), \
                                 ::serde::Serialize::to_value({fname})));\n"
                            );
                            match &f.skip_if {
                                Some(path) => {
                                    pushes.push_str(&format!("if !{path}({fname}) {{ {push} }}\n"))
                                }
                                None => pushes.push_str(&push),
                            }
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binders} }} => {{\n\
                                 let mut __entries: Vec<(String, ::serde::value::Value)> = Vec::new();\n\
                                 {pushes}\
                                 ::serde::value::Value::Object(vec![(\
                                     \"{vn}\".to_string(), \
                                     ::serde::value::Value::Object(__entries))])\n\
                             }}\n"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::value::Value {{\n\
                         match self {{\n{arms}}}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse()
        .expect("serde shim generated invalid Serialize impl")
}

/// Codegen for reading one named field out of `source` (an expression of
/// type `&Value`), honouring `#[serde(default)]`: a missing key either
/// falls back to `Default::default()` or raises a "missing field in
/// `context`" error. Shared by the named-struct and named-variant
/// Deserialize paths so the two can never drift apart.
fn field_read_codegen(source: &str, f: &Field, context: &str) -> String {
    let fname = &f.name;
    if f.default {
        format!(
            "{fname}: match {source}.get(\"{fname}\") {{\n\
                 Some(v) => ::serde::Deserialize::from_value(v)?,\n\
                 None => ::core::default::Default::default(),\n\
             }}"
        )
    } else {
        format!(
            "{fname}: ::serde::Deserialize::from_value({source}.get(\"{fname}\")\
                 .ok_or_else(|| ::serde::Error::custom(\
                     \"missing field `{fname}` in {context}\"))?)?"
        )
    }
}

/// Derives the value-tree `Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::NamedStruct { name, fields } => {
            let mut reads = String::new();
            for f in fields {
                reads.push_str(&field_read_codegen("value", f, name));
                reads.push_str(",\n");
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::value::Value) -> Result<Self, ::serde::Error> {{\n\
                         if !matches!(value, ::serde::value::Value::Object(_)) {{\n\
                             return Err(::serde::Error::custom(\"expected object for {name}\"));\n\
                         }}\n\
                         Ok({name} {{\n{reads}}})\n\
                     }}\n\
                 }}"
            )
        }
        Item::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(value: &::serde::value::Value) -> Result<Self, ::serde::Error> {{\n\
                     Ok({name}(::serde::Deserialize::from_value(value)?))\n\
                 }}\n\
             }}"
        ),
        Item::TupleStruct { name, arity } => {
            let reads: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::value::Value) -> Result<Self, ::serde::Error> {{\n\
                         match value {{\n\
                             ::serde::value::Value::Array(items) if items.len() == {arity} => \
                                 Ok({name}({})),\n\
                             _ => Err(::serde::Error::custom(\"expected {arity}-array for {name}\")),\n\
                         }}\n\
                     }}\n\
                 }}",
                reads.join(", ")
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms.push_str(&format!("\"{vn}\" => return Ok({name}::{vn}),\n"));
                    }
                    VariantKind::Tuple(1) => data_arms.push_str(&format!(
                        "\"{vn}\" => return Ok({name}::{vn}(\
                             ::serde::Deserialize::from_value(payload)?)),\n"
                    )),
                    VariantKind::Tuple(arity) => {
                        let reads: Vec<String> = (0..*arity)
                            .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                                 let items = match payload {{\n\
                                     ::serde::value::Value::Array(items) if items.len() == {arity} => items,\n\
                                     _ => return Err(::serde::Error::custom(\
                                         \"expected {arity}-array payload for {name}::{vn}\")),\n\
                                 }};\n\
                                 return Ok({name}::{vn}({}));\n\
                             }}\n",
                            reads.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let context = format!("{name}::{vn}");
                        let reads: Vec<String> = fields
                            .iter()
                            .map(|f| field_read_codegen("payload", f, &context))
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vn}\" => return Ok({name}::{vn} {{ {} }}),\n",
                            reads.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::value::Value) -> Result<Self, ::serde::Error> {{\n\
                         if let ::serde::value::Value::Str(s) = value {{\n\
                             match s.as_str() {{\n\
                                 {unit_arms}\
                                 _ => {{}}\n\
                             }}\n\
                         }}\n\
                         if let ::serde::value::Value::Object(entries) = value {{\n\
                             if entries.len() == 1 {{\n\
                                 let (tag, payload) = &entries[0];\n\
                                 let _ = payload;\n\
                                 match tag.as_str() {{\n\
                                     {data_arms}\
                                     _ => {{}}\n\
                                 }}\n\
                             }}\n\
                         }}\n\
                         Err(::serde::Error::custom(\
                             format!(\"unrecognized {name} value: {{value:?}}\")))\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse()
        .expect("serde shim generated invalid Deserialize impl")
}
