//! Offline shim for the subset of `serde_json` this workspace uses:
//! [`to_string`], [`to_string_pretty`], [`from_str`], [`to_value`] /
//! [`from_value`] and the [`Value`] re-export, all over the vendored serde
//! shim's value tree.

pub use serde::value::Value;
pub use serde::Error;

use serde::{Deserialize, Serialize};

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_json_compact())
}

/// Serializes `value` to a 2-space-indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_json_pretty())
}

/// Converts `value` into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Reconstructs a `T` from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_value(value)
}

/// Parses JSON text and reconstructs a `T` from it.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
    let value = parse_value(input)?;
    T::from_value(&value)
}

/// Parses JSON text into a [`Value`] tree, rejecting trailing garbage.
pub fn parse_value(input: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_whitespace(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse(&mut self) -> Result<Value, Error> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::custom(format!(
                "unexpected input {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]` in array, got {other:?}"
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.parse()?;
            entries.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}` in object, got {other:?}"
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let code = self.parse_hex4()?;
                            // Surrogate pairs are not produced by our own
                            // serializer; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code as u32).unwrap_or('\u{FFFD}'));
                            continue;
                        }
                        other => {
                            return Err(Error::custom(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance over one UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    let c = s.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u16, Error> {
        self.pos += 1; // consume 'u'
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::custom("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::custom("bad \\u escape"))?;
        let code =
            u16::from_str_radix(hex, 16).map_err(|_| Error::custom("bad \\u escape digits"))?;
        self.pos = end;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("bad number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::custom(format!("bad float `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error::custom(format!("bad integer `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::custom(format!("bad integer `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse_value("null").unwrap(), Value::Null);
        assert_eq!(parse_value("true").unwrap(), Value::Bool(true));
        assert_eq!(parse_value("42").unwrap(), Value::UInt(42));
        assert_eq!(parse_value("-7").unwrap(), Value::Int(-7));
        assert_eq!(parse_value("1.5").unwrap(), Value::Float(1.5));
        assert_eq!(parse_value("\"hi\\n\"").unwrap(), Value::Str("hi\n".into()));
    }

    #[test]
    fn round_trips_nested_structures() {
        let text = r#"{"a":[1,2.5,null,{"b":"x"}],"c":true}"#;
        let v = parse_value(text).unwrap();
        assert_eq!(v.to_json_compact(), text);
    }

    #[test]
    fn pretty_output_reparses_identically() {
        let v = parse_value(r#"{"a":[1,2],"b":{"c":false}}"#).unwrap();
        let pretty = v.to_json_pretty();
        assert_eq!(parse_value(&pretty).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_value("{").is_err());
        assert!(parse_value("1 2").is_err());
        assert!(parse_value("nope").is_err());
    }

    #[test]
    fn typed_round_trip() {
        let xs = vec![1u64, 2, 3];
        let text = to_string(&xs).unwrap();
        let back: Vec<u64> = from_str(&text).unwrap();
        assert_eq!(back, xs);
    }
}
