//! Offline shim for the subset of `rayon` this workspace uses.
//!
//! `par_iter_mut().map(f).collect()` is genuinely parallel: the slice is
//! split into one contiguous chunk per available core and processed on
//! scoped OS threads, with results concatenated in slice order. The engine's
//! per-node RNG streams depend only on `(seed, node, round)`, so parallel and
//! sequential execution are bit-for-bit identical — this shim preserves that
//! property by keeping chunk order deterministic. Swapping the real `rayon`
//! back in requires no source change.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

thread_local! {
    static THREAD_CAP: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The number of worker threads parallel operations use by default: the
/// `TSA_THREADS` environment variable when set to a positive integer,
/// otherwise [`std::thread::available_parallelism`]; further capped by an
/// enclosing [`with_thread_cap`] scope. CI and laptops bound parallelism by
/// exporting `TSA_THREADS`; both the slice iterators here and the
/// `tsa-sweep` executor honour it.
pub fn current_num_threads() -> usize {
    let base = std::env::var("TSA_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
    match THREAD_CAP.get() {
        Some(cap) => base.min(cap.max(1)),
        None => base,
    }
}

/// Runs `f` with [`current_num_threads`] capped at `cap` on this thread.
/// Nested parallelism uses this so an outer pool of workers does not
/// multiply into `workers × cores` threads: each `tsa-sweep` worker runs its
/// cells under a cap of `machine / workers`. The cap is thread-local and
/// restored on exit (also on panic).
pub fn with_thread_cap<R>(cap: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_CAP.set(self.0);
        }
    }
    let _restore = Restore(THREAD_CAP.replace(Some(cap.max(1))));
    f()
}

/// Runs `f(i)` for every `i in 0..jobs` across `threads` scoped workers that
/// pull indices from a shared counter. Scheduling steals work at the
/// granularity of whole jobs — a fast worker simply takes the next index — so
/// wall-clock tracks the slowest job, not the slowest static chunk. `f` must
/// be deterministic per index for results to be independent of `threads`.
pub fn for_each_index<F>(jobs: usize, threads: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    let threads = threads.clamp(1, jobs.max(1));
    if threads <= 1 {
        for i in 0..jobs {
            f(i);
        }
        return;
    }
    let next = AtomicUsize::new(0);
    let f = &f;
    let next = &next;
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs {
                    break;
                }
                f(i);
            });
        }
    });
}

/// Runs `f(i, &mut slice[i])` for every element of `slice` across `threads`
/// scoped workers pulling indices from a shared counter — the mutable-slice
/// sibling of [`for_each_index`]. Every index is claimed by exactly one
/// worker, so each element is mutated by exactly one thread; results are
/// therefore independent of `threads` whenever `f` is deterministic per
/// index. This is the primitive behind the simulator's parallel compute
/// phase: one job per node, stolen at node granularity, writing into that
/// node's own slot.
pub fn for_each_index_mut<T, F>(slice: &mut [T], threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let jobs = slice.len();
    let threads = threads.clamp(1, jobs.max(1));
    if threads <= 1 {
        for (i, item) in slice.iter_mut().enumerate() {
            f(i, item);
        }
        return;
    }
    // A raw base pointer shared across the scoped workers. Disjointness is
    // guaranteed by the atomic index counter: `fetch_add` hands every index
    // to exactly one worker, so no two threads ever form a reference to the
    // same element.
    struct SyncPtr<T>(*mut T);
    unsafe impl<T: Send> Sync for SyncPtr<T> {}
    let base = SyncPtr(slice.as_mut_ptr());
    let next = AtomicUsize::new(0);
    let f = &f;
    let next = &next;
    let base = &base;
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs {
                    break;
                }
                // SAFETY: `i < jobs = slice.len()` and the counter hands out
                // each index exactly once, so this is the only live reference
                // to element `i`; the scope keeps the borrow of `slice` alive
                // past every worker.
                let item = unsafe { &mut *base.0.add(i) };
                f(i, item);
            });
        }
    });
}

/// A "parallel" mutable iterator over a slice, consumed by [`ParIterMut::map`].
pub struct ParIterMut<'data, T: Send> {
    slice: &'data mut [T],
}

/// The mapped form of [`ParIterMut`], consumed by [`ParMap::collect`].
pub struct ParMap<'data, T: Send, F> {
    slice: &'data mut [T],
    f: F,
}

impl<'data, T: Send> ParIterMut<'data, T> {
    /// Maps each element through `f` (applied in parallel at collect time).
    pub fn map<R, F>(self, f: F) -> ParMap<'data, T, F>
    where
        F: Fn(&mut T) -> R + Sync,
        R: Send,
    {
        ParMap {
            slice: self.slice,
            f,
        }
    }
}

impl<T: Send, F> ParMap<'_, T, F> {
    /// Applies the map across one chunk per available core and collects the
    /// results in slice order.
    pub fn collect<R, C>(self) -> C
    where
        F: Fn(&mut T) -> R + Sync,
        R: Send,
        C: FromIterator<R>,
    {
        let len = self.slice.len();
        let f = &self.f;
        let threads = current_num_threads().min(len.max(1));
        if threads <= 1 {
            return self.slice.iter_mut().map(f).collect();
        }
        let chunk_size = len.div_ceil(threads);
        let mut chunk_results: Vec<Vec<R>> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .slice
                .chunks_mut(chunk_size)
                .map(|chunk| scope.spawn(move || chunk.iter_mut().map(f).collect::<Vec<R>>()))
                .collect();
            chunk_results = handles
                .into_iter()
                .map(|h| h.join().expect("parallel worker panicked"))
                .collect();
        });
        chunk_results.into_iter().flatten().collect()
    }
}

pub mod prelude {
    //! Parallel-iterator traits.

    pub use super::ParIterMut;

    /// Types that can hand out a parallel mutable iterator.
    pub trait IntoParallelRefMutIterator<'data> {
        /// The element type.
        type Elem: Send + 'data;

        /// Returns a parallel mutable iterator over the elements.
        fn par_iter_mut(&'data mut self) -> ParIterMut<'data, Self::Elem>;
    }

    impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for Vec<T> {
        type Elem = T;

        fn par_iter_mut(&'data mut self) -> ParIterMut<'data, T> {
            super::par_iter_mut_impl(self.as_mut_slice())
        }
    }

    impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for [T] {
        type Elem = T;

        fn par_iter_mut(&'data mut self) -> ParIterMut<'data, T> {
            super::par_iter_mut_impl(self)
        }
    }
}

fn par_iter_mut_impl<T: Send>(slice: &mut [T]) -> ParIterMut<'_, T> {
    ParIterMut { slice }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_mut_maps_and_collects_in_order() {
        let mut xs: Vec<u64> = (0..10_000).collect();
        let doubled: Vec<u64> = xs.par_iter_mut().map(|x| *x * 2).collect();
        let expected: Vec<u64> = (0..10_000).map(|x| x * 2).collect();
        assert_eq!(doubled, expected);
    }

    #[test]
    fn mutations_through_the_parallel_iterator_stick() {
        let mut xs = vec![1u32; 1000];
        let _: Vec<()> = xs.par_iter_mut().map(|x| *x += 1).collect();
        assert!(xs.iter().all(|&x| x == 2));
    }

    #[test]
    fn empty_and_single_element_slices_work() {
        let mut empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter_mut().map(|x| *x).collect();
        assert!(out.is_empty());
        let mut one = vec![7u32];
        let out: Vec<u32> = one.par_iter_mut().map(|x| *x + 1).collect();
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn for_each_index_visits_every_job_exactly_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        for threads in [1usize, 2, 7] {
            let hits: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
            super::for_each_index(100, threads, |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "threads = {threads}"
            );
        }
        // Zero jobs and zero threads are both safe no-ops / serial fallbacks.
        super::for_each_index(0, 4, |_| panic!("no jobs to run"));
        let ran = AtomicUsize::new(0);
        super::for_each_index(3, 0, |_| {
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn for_each_index_mut_mutates_every_element_exactly_once() {
        for threads in [1usize, 2, 5] {
            let mut xs = vec![0u64; 257];
            super::for_each_index_mut(&mut xs, threads, |i, x| {
                *x += i as u64 + 1;
            });
            assert!(
                xs.iter().enumerate().all(|(i, &x)| x == i as u64 + 1),
                "threads = {threads}"
            );
        }
        // Empty slices and zero threads are safe no-ops / serial fallbacks.
        let mut empty: Vec<u8> = Vec::new();
        super::for_each_index_mut(&mut empty, 4, |_, _| panic!("no jobs"));
        let mut one = vec![1u8];
        super::for_each_index_mut(&mut one, 0, |_, x| *x = 9);
        assert_eq!(one, vec![9]);
    }

    #[test]
    fn thread_caps_scope_and_restore() {
        let base = super::current_num_threads();
        super::with_thread_cap(1, || {
            assert_eq!(super::current_num_threads(), 1);
            // Nested caps apply and restore independently.
            super::with_thread_cap(3, || {
                assert!(super::current_num_threads() <= 3);
            });
            assert_eq!(super::current_num_threads(), 1);
            // Zero is clamped to one, never zero threads.
            super::with_thread_cap(0, || {
                assert_eq!(super::current_num_threads(), 1);
            });
        });
        assert_eq!(super::current_num_threads(), base);
        // The cap is thread-local: a fresh thread is uncapped.
        super::with_thread_cap(1, || {
            let other = std::thread::spawn(super::current_num_threads)
                .join()
                .unwrap();
            assert_eq!(other, base);
        });
    }

    #[test]
    fn work_actually_spreads_across_threads() {
        if std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            < 2
        {
            return; // single-core environment: nothing to observe
        }
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen = Mutex::new(HashSet::new());
        let mut xs = vec![0u8; 64];
        let _: Vec<()> = xs
            .par_iter_mut()
            .map(|_| {
                // Slow each element slightly so multiple chunks overlap.
                std::thread::sleep(std::time::Duration::from_millis(1));
                seen.lock().unwrap().insert(std::thread::current().id());
            })
            .collect();
        assert!(
            seen.lock().unwrap().len() > 1,
            "expected more than one worker thread"
        );
    }
}
