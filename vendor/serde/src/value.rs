//! The value tree both shim traits speak: an owned, JSON-shaped enum.

use std::fmt::Write as _;

/// A JSON-shaped value tree.
///
/// Objects preserve insertion order (a `Vec` of pairs, not a map), so struct
/// fields serialize in declaration order exactly like real serde_json.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer (produced by negative JSON numbers).
    Int(i64),
    /// An unsigned integer.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object as an ordered list of `(key, value)` pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string slice, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array items, if this is an `Array`.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(u) => Some(*u),
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// The boolean, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::UInt(u) => Some(*u as f64),
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Renders the compact (no whitespace) JSON form.
    pub fn to_json_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    /// Renders the pretty (2-space indented) JSON form.
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Value::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Value::Float(f) => write_float(out, *f),
            Value::Str(s) => write_escaped(out, s),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Value::Object(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Value::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Value::Object(entries) if !entries.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            other => other.write_compact(out),
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_float(out: &mut String, f: f64) {
    if f.is_finite() {
        // `{:?}` is the shortest round-trip form and keeps a trailing `.0`
        // for integral floats, matching serde_json's output.
        let _ = write!(out, "{f:?}");
    } else {
        // serde_json renders non-finite floats as null.
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering_matches_json() {
        let v = Value::Object(vec![
            ("a".into(), Value::UInt(1)),
            (
                "b".into(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
            ("c".into(), Value::Float(1.0)),
        ]);
        assert_eq!(v.to_json_compact(), r#"{"a":1,"b":[true,null],"c":1.0}"#);
    }

    #[test]
    fn strings_are_escaped() {
        let v = Value::Str("a\"b\\c\nd".into());
        assert_eq!(v.to_json_compact(), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Value::Float(f64::INFINITY).to_json_compact(), "null");
        assert_eq!(Value::Float(f64::NAN).to_json_compact(), "null");
    }

    #[test]
    fn get_finds_object_keys() {
        let v = Value::Object(vec![("x".into(), Value::UInt(5))]);
        assert_eq!(v.get("x"), Some(&Value::UInt(5)));
        assert_eq!(v.get("y"), None);
    }
}
