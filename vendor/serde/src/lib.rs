//! Offline shim for the subset of `serde` this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a miniature serde: instead of the visitor-based data model, serialization
//! goes through an owned JSON-like [`value::Value`] tree ([`Serialize`] builds
//! one, [`Deserialize`] reads one back). The companion `serde_json` shim
//! renders and parses that tree. Derive macros for both traits are provided by
//! the `serde_derive` shim and re-exported here, so `#[derive(Serialize,
//! Deserialize)]` and `#[derive(serde::Serialize)]` work as with real serde.

pub use serde_derive::{Deserialize, Serialize};

pub mod value;

pub use value::Value;

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A (de)serialization error: a message describing the mismatch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error from a message.
    pub fn custom<T: fmt::Display>(message: T) -> Self {
        Error {
            message: message.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Types that can be turned into a [`Value`] tree.
pub trait Serialize {
    /// Builds the value tree for `self`.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reads `self` back from a value tree.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = match value {
                    Value::UInt(u) => *u,
                    Value::Int(i) if *i >= 0 => *i as u64,
                    other => return Err(Error::custom(format!(
                        "expected unsigned integer, got {other:?}"
                    ))),
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!("integer {raw} out of range")))
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = match value {
                    Value::Int(i) => *i,
                    Value::UInt(u) => i64::try_from(*u)
                        .map_err(|_| Error::custom(format!("integer {u} out of range")))?,
                    other => return Err(Error::custom(format!(
                        "expected integer, got {other:?}"
                    ))),
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!("integer {raw} out of range")))
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            // Non-finite floats serialize as null (as in serde_json).
            Value::Null => Ok(f64::NAN),
            other => Err(Error::custom(format!("expected float, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!("expected array, got {other:?}"))),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(Error::custom(format!("expected 2-array, got {other:?}"))),
        }
    }
}

/// Renders a key value the way serde_json renders JSON object keys: strings
/// directly, everything else through its compact JSON form.
fn key_string<K: Serialize>(key: &K) -> String {
    match key.to_value() {
        Value::Str(s) => s,
        other => other.to_json_compact(),
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Deterministic output: sort by rendered key.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (key_string(k), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_string(k), v.to_value()))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip_through_values() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-3i64).to_value()).unwrap(), -3);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        let v: Vec<u32> = Vec::from_value(&vec![1u32, 2, 3].to_value()).unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        let o: Option<u32> = Option::from_value(&Value::Null).unwrap();
        assert_eq!(o, None);
    }

    #[test]
    fn ints_coerce_to_floats() {
        assert_eq!(f64::from_value(&Value::UInt(7)).unwrap(), 7.0);
        assert_eq!(f64::from_value(&Value::Int(-2)).unwrap(), -2.0);
    }

    #[test]
    fn type_mismatches_error() {
        assert!(u64::from_value(&Value::Str("x".into())).is_err());
        assert!(bool::from_value(&Value::UInt(1)).is_err());
        assert!(u8::from_value(&Value::UInt(300)).is_err());
    }
}
