//! Offline shim for the subset of `proptest` this workspace uses.
//!
//! The [`proptest!`] macro expands each `fn name(pat in strategy, ...) { .. }`
//! into a plain `#[test]` that draws `cases` deterministic samples from the
//! strategies and runs the body for each. There is no shrinking: a failing
//! case panics with the values embedded in the assertion message (the
//! [`prop_assert!`]/[`prop_assert_eq!`] macros are plain assertions here).
//! Sampling is deterministic per (test name, case index), so failures are
//! exactly reproducible.

use std::ops::{Range, RangeInclusive};

/// Configuration accepted via `#![proptest_config(...)]`.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of cases drawn per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The deterministic RNG driving strategy sampling (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng(u64);

impl TestRng {
    /// Derives the RNG for one test case from the test name and case index.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(h ^ ((case as u64) << 32) ^ 0x9E37_79B9_7F4A_7C15)
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform draw from `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "cannot sample from an empty range");
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The value type produced.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (the `proptest` combinator of the
    /// same name).
    fn prop_map<R, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> R,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, R, F: Fn(S::Value) -> R> Strategy for Map<S, F> {
    type Value = R;

    fn generate(&self, rng: &mut TestRng) -> R {
        (self.f)(self.inner.generate(rng))
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

/// A uniform choice between boxed strategies of one value type; built by
/// [`prop_oneof!`].
pub struct Union<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// A union over `arms` (must be non-empty), each drawn with equal
    /// probability.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let arm = rng.below(self.arms.len() as u64) as usize;
        self.arms[arm].generate(rng)
    }
}

/// Boxes a strategy for storage in a [`Union`] (implementation detail of
/// [`prop_oneof!`]).
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

/// Chooses uniformly between the listed strategies (the unweighted subset of
/// `proptest`'s macro of the same name).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::boxed($arm)),+])
    };
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

pub mod collection {
    //! Collection strategies (`proptest::collection::vec`).

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing vectors of values drawn from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Vectors with lengths drawn from `size` and elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = Strategy::generate(&self.size, rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Expands property functions into deterministic multi-case `#[test]`s.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr); $( $(#[$attr:meta])* fn $name:ident( $($pat:pat in $strategy:expr),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for __case in 0..config.cases {
                    let mut __rng = $crate::TestRng::for_case(stringify!($name), __case);
                    $( let $pat = $crate::Strategy::generate(&($strategy), &mut __rng); )*
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property (plain `assert!` in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property (plain `assert_eq!` in this shim).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// The pieces most users want in scope.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_oneof, proptest, ProptestConfig, Strategy, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 0u64..100, f in 0.25f64..0.75, lambda in 1u32..16) {
            prop_assert!(x < 100);
            prop_assert!((0.25..0.75).contains(&f));
            prop_assert!((1..16).contains(&lambda));
        }

        #[test]
        fn vec_strategy_respects_length(xs in crate::collection::vec(0.0f64..1.0, 1..10)) {
            prop_assert!(!xs.is_empty() && xs.len() < 10);
            for x in xs {
                prop_assert!((0.0..1.0).contains(&x));
            }
        }

        #[test]
        fn tuples_map_and_oneof_compose(
            pair in (0u64..10, 0.0f64..1.0).prop_map(|(a, b)| (a * 2, b)),
            choice in prop_oneof![
                (0u32..5).prop_map(|x| x as i64),
                (10u32..15).prop_map(|x| x as i64),
            ],
        ) {
            prop_assert!(pair.0 % 2 == 0 && pair.0 < 20);
            prop_assert!((0.0..1.0).contains(&pair.1));
            prop_assert!((0..5).contains(&choice) || (10..15).contains(&choice));
        }
    }

    #[test]
    fn sampling_is_deterministic_per_case() {
        let mut a = TestRng::for_case("t", 3);
        let mut b = TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
