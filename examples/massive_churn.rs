//! The paper's headline scenario: a `(2, 2λ+7)`-late adversary churns a
//! constant fraction of the network every `O(log n)` rounds while the
//! maintenance protocol keeps the overlay connected and routable.
//!
//! The example runs the same churn volume twice — once as oblivious random
//! churn and once as the strongest topology-aware attack the lateness allows —
//! and prints the overlay health over time for both.
//!
//! ```text
//! cargo run --release --example massive_churn
//! ```

// Examples own their stdout/stderr: it IS their interface.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use two_steps_ahead::prelude::*;

fn run(label: &str, scenario: Scenario) {
    let mut run = scenario.build();
    run.run_bootstrap();
    println!("\n=== {label} ===");
    println!("round  nodes  mature  wired  connected  largest-comp  max-congestion");
    for _ in 0..6 {
        run.run(4);
        let r = run.report();
        println!(
            "{:>5}  {:>5}  {:>6}  {:>5}  {:>9}  {:>12.3}  {:>6}",
            r.round,
            r.node_count,
            r.mature_count,
            r.participating,
            r.connected,
            r.largest_component_fraction,
            r.max_congestion
        );
    }
    let r = run.report();
    assert!(
        r.largest_component_fraction > 0.9,
        "{label}: the overlay fell apart: {r:?}"
    );
}

fn main() {
    let base = Scenario::maintained_lds(96)
        .with_tau(6)
        .with_replication(3)
        .churn(ChurnSpec::paper())
        .seed(7);
    // The paper's budget: αn churn events per 4λ+14 rounds. Spread it out as a
    // few events per round so the adversary is always active.
    let params = base.spec().maintenance_params();
    let per_round = (params.overlay.churn_budget() / 8).max(1);

    run(
        "oblivious random churn",
        base.clone().adversary(AdversarySpec::random(per_round, 1)),
    );
    run(
        "2-late targeted-swarm churn",
        base.adversary(AdversarySpec::targeted(per_round, 2)),
    );

    println!("\nBoth adversaries spend the same budget; because every overlay is");
    println!("rebuilt two rounds before the adversary can see it (Lemma 16), the");
    println!("targeted attack does no better than random churn.");
}
