//! Quickstart: compose a maintained-overlay experiment with the `Scenario`
//! builder, run it through its bootstrap phase and a few steady-state epochs,
//! then print a health report of the maintained overlay.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

// Examples own their stdout/stderr: it IS their interface.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use two_steps_ahead::prelude::*;

fn main() {
    // A small network: n is the lower bound on the number of nodes the
    // adversary must respect; every protocol constant (λ, swarm radius, δ, τ)
    // is derived from it. The builder composes the whole stack — overlay
    // parameters, maintenance protocol, churn rules, adversary — behind one
    // fluent chain.
    let mut run = Scenario::maintained_lds(96)
        .with_tau(6)
        .with_replication(3)
        .churn(ChurnSpec::none())
        .seed(42)
        .build();
    let params = *run.params();
    println!(
        "n = {}, λ = {}, swarm radius = {:.4}, maturity age = {} rounds",
        params.overlay.n,
        params.lambda(),
        params.swarm_radius(),
        params.maturity_age()
    );

    // No churn yet: just the bootstrap phase plus a few epochs of steady
    // state, so every overlay is built purely from CREATE introductions.
    run.run_bootstrap();
    run.run(8);

    let report = run.report();
    println!(
        "\nAfter {} rounds (epoch {}):",
        report.round + 1,
        report.epoch
    );
    println!("  nodes               : {}", report.node_count);
    println!("  mature              : {}", report.mature_count);
    println!("  wired into overlay  : {}", report.participating);
    println!("  participation rate  : {:.3}", report.participation_rate);
    println!("  connected           : {}", report.connected);
    println!("  mean degree         : {:.1}", report.mean_degree);
    println!("  min swarm size      : {}", report.min_swarm_size);
    println!(
        "  peak congestion     : {} msgs/node/round",
        report.max_congestion
    );
    println!("  routable            : {}", report.is_routable());

    assert!(
        report.is_routable(),
        "the freshly bootstrapped overlay must be routable"
    );
    println!(
        "\nThe overlay was rebuilt from scratch every 2 rounds — {} times so far.",
        report.epoch
    );

    // The same run, finalized as a serializable outcome (this is what the
    // experiment binaries write into their BENCH_*.json files).
    let outcome = run.into_outcome();
    println!("\nScenario outcome label: {}", outcome.label);
}
