//! Exercise `A_ROUTING` and `A_SAMPLING` on a routable series of LDS
//! snapshots: measure delivery rate, the exact `2λ+2` dilation, congestion
//! versus `k · log n`, and the uniformity of peer sampling.
//!
//! ```text
//! cargo run --release --example routing_and_sampling
//! ```

use rand::SeedableRng;
use two_steps_ahead::analysis::{uniformity, Summary};
use two_steps_ahead::overlay::Lds;
use two_steps_ahead::prelude::*;
use two_steps_ahead::routing::{sample_many, uniform_workload, RoutingSim};
use two_steps_ahead::sim::NodeId;

fn main() {
    let n = 512;
    let params = OverlayParams::with_default_c(n);
    let lambda = params.lambda();
    let series = RoutableSeries::new(params, 99, (0..n as u64).map(NodeId));

    println!("n = {n}, λ = {lambda}, expected dilation = {} rounds", 2 * lambda + 2);
    println!("\n-- A_ROUTING under 25% holder failure --");
    for k in [1usize, 2, 4] {
        let config = RoutingConfig::default()
            .with_replication(4)
            .with_holder_failure(0.25)
            .with_seed(5);
        let sim = RoutingSim::new(&series, config);
        let report = sim.route_all(0, &uniform_workload(&series, k, 11 + k as u64));
        println!(
            "k = {k}: delivered {}/{} ({:.1}%), dilation = {} rounds, max congestion = {} (k·λ = {})",
            report.delivered,
            report.total,
            100.0 * report.delivery_rate(),
            report.dilation,
            report.max_congestion,
            k as u32 * lambda,
        );
    }

    println!("\n-- A_SAMPLING uniformity --");
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
    let overlay = Lds::random(params, (0..n as u64).map(NodeId), &mut rng);
    let report = sample_many(&overlay, 100_000, 17);
    let hit_summary = Summary::of_counts(report.hits.values().copied());
    let uni = uniformity(&report.hits, n);
    println!("attempts            : {}", report.attempts);
    println!("discard rate        : {:.3} (Lemma 13 bound: ≤ 0.5 + o(1))", report.discard_rate());
    println!("distinct nodes hit  : {}/{n}", report.distinct_nodes());
    println!("hits per node       : mean {:.1}, min {:.0}, max {:.0}", hit_summary.mean, hit_summary.min, hit_summary.max);
    println!("total variation dist: {:.4}", uni.total_variation);
    println!("chi² ({} df)       : {:.1}", uni.degrees_of_freedom, uni.chi_square);
}
