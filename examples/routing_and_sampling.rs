//! Exercise `A_ROUTING` and `A_SAMPLING` through the `Scenario` builder:
//! measure delivery rate, the exact `2λ+2` dilation, congestion versus
//! `k · log n`, and the uniformity of peer sampling.
//!
//! ```text
//! cargo run --release --example routing_and_sampling
//! ```

// Examples own their stdout/stderr: it IS their interface.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use two_steps_ahead::overlay::OverlayParams;
use two_steps_ahead::prelude::*;

fn main() {
    let n = 512;
    let lambda = OverlayParams::with_default_c(n).lambda();

    println!(
        "n = {n}, λ = {lambda}, expected dilation = {} rounds",
        2 * lambda + 2
    );
    println!("\n-- A_ROUTING under 25% holder failure --");
    for k in [1usize, 2, 4] {
        let outcome = Scenario::routing(n)
            .with_replication(4)
            .holder_failure(0.25)
            .messages_per_node(k)
            .seed(99)
            .workload_seed(11 + k as u64)
            .run(0);
        let report = outcome.routing.expect("routing outcome");
        println!(
            "k = {k}: delivered {}/{} ({:.1}%), dilation = {} rounds, max congestion = {} (k·λ = {})",
            report.delivered,
            report.total,
            100.0 * report.delivery_rate,
            report.dilation,
            report.max_congestion,
            k as u32 * lambda,
        );
    }

    println!("\n-- A_SAMPLING uniformity --");
    let outcome = Scenario::sampling(n)
        .attempts(100_000)
        .seed(3)
        .workload_seed(17)
        .run(0);
    let report = outcome.sampling.expect("sampling outcome");
    println!("attempts            : {}", report.attempts);
    println!(
        "discard rate        : {:.3} (Lemma 13 bound: ≤ 0.5 + o(1))",
        report.discard_rate
    );
    println!("distinct nodes hit  : {}/{n}", report.distinct_nodes);
    println!(
        "hits per node       : mean {:.1}, min {}, max {}",
        report.hits_mean, report.hits_min, report.hits_max
    );
    println!("total variation dist: {:.4}", report.total_variation);
    println!(
        "chi² ({} df)       : {:.1}",
        report.degrees_of_freedom, report.chi_square
    );
}
