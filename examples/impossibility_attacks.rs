//! The two impossibility results of Section 2, demonstrated as executable
//! attacks against a generic low-degree gossip overlay (the lemmas hold for
//! *any* protocol, so a simple one makes the mechanics visible):
//!
//! * **Lemma 3**: a `(0,∞)`-late adversary (up-to-date topology view) churns
//!   every node a newcomer talks to before they can spread its identifier, so
//!   the newcomer stays cut off. Against a *static* overlay even the 2-late
//!   adversary succeeds (old snapshots still predict future contacts), which
//!   is precisely the motivation for rebuilding the overlay every two rounds;
//!   the `massive_churn` example shows the maintained overlay shrugging the
//!   same adversary off.
//! * **Lemma 4**: if nodes may join via bootstrap nodes that themselves joined
//!   only one round ago, a join chain starves newcomers of live contacts; with
//!   the paper's ≥2-rounds-old rule the engine rejects the chain joins.
//!
//! ```text
//! cargo run --release --example impossibility_attacks
//! ```
//!
//! Unlike the other examples this one does not use the `Scenario` builder:
//! the impossibility constructions run a *custom* gossip protocol against the
//! raw simulator, below the maintained-LDS layer the builder composes.

// Examples own their stdout/stderr: it IS their interface.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use rand::seq::SliceRandom;
use two_steps_ahead::adversary::{
    victim_is_isolated, IsolateNewcomerAdversary, JoinChainAdversary,
};
#[allow(unused_imports)]
use two_steps_ahead::sim::{
    ChurnRules, Ctx, Envelope, Lateness, NodeId, Process, SimConfig, Simulator,
};

/// Number of nodes in the demonstration networks.
const N: u64 = 64;

/// A minimal overlay protocol: every node keeps a bounded contact list, greets
/// its contacts each round and introduces newly learned identifiers to them.
#[derive(Default)]
struct Gossip {
    contacts: Vec<NodeId>,
}

impl Gossip {
    /// Initial contacts of the nodes of the initial network: a handful of
    /// pseudo-random peers, so that who a node actually talks to in a given
    /// round is not predictable from an old snapshot.
    fn seeded(id: NodeId) -> Self {
        let offsets = [1u64, N - 1, 5, N - 5, 11, 17, 23, 31];
        Gossip {
            contacts: offsets
                .iter()
                .map(|o| NodeId((id.raw() + o) % N))
                .filter(|c| *c != id)
                .collect(),
        }
    }
}

#[derive(Clone, Copy)]
enum GossipMsg {
    Hello,
    Meet(NodeId),
}

impl Process for Gossip {
    type Msg = GossipMsg;
    fn on_round(&mut self, ctx: &mut Ctx<'_, GossipMsg>, inbox: &[Envelope<GossipMsg>]) {
        let mut learned: Vec<NodeId> = Vec::new();
        for env in inbox {
            learned.push(env.from);
            if let GossipMsg::Meet(id) = env.payload {
                learned.push(id);
            }
        }
        for id in learned {
            if id != ctx.id() && !self.contacts.contains(&id) {
                // Gossip a freshly learned identifier onwards so that knowledge
                // of newcomers spreads beyond their first contacts.
                let picks: Vec<NodeId> = self
                    .contacts
                    .choose_multiple(&mut ctx.rng, 3)
                    .copied()
                    .collect();
                for c in picks {
                    ctx.send(c, GossipMsg::Meet(id));
                }
                self.contacts.push(id);
            }
        }
        self.contacts.truncate(16);
        // Sponsor newly joined nodes: greet them and introduce them to a few
        // randomly chosen contacts (and vice versa).
        let sponsored: Vec<NodeId> = ctx.sponsored().to_vec();
        for new in &sponsored {
            ctx.send(*new, GossipMsg::Hello);
            let picks: Vec<NodeId> = self
                .contacts
                .choose_multiple(&mut ctx.rng, 3)
                .copied()
                .collect();
            for c in picks {
                ctx.send(c, GossipMsg::Meet(*new));
                ctx.send(*new, GossipMsg::Meet(c));
            }
            if !self.contacts.contains(new) {
                self.contacts.push(*new);
            }
        }
        // Greet a small random subset of contacts: the adversary cannot tell
        // from an old snapshot who will be contacted next.
        let sample: Vec<NodeId> = self
            .contacts
            .choose_multiple(&mut ctx.rng, 2)
            .copied()
            .collect();
        for c in sample {
            ctx.send(c, GossipMsg::Hello);
        }
    }
}

fn lemma3(lateness: Lateness, label: &str) {
    // The paper's churn-rate regime: a constant fraction of the network per
    // O(log n) rounds. Against an up-to-date adversary a handful of removals
    // suffice; a 2-late adversary cannot catch up with the gossip cascade.
    let rules = ChurnRules {
        max_events: Some(28),
        window: 38,
        bootstrap_rounds: 4,
        ..ChurnRules::default()
    };
    let adversary = IsolateNewcomerAdversary::new(6, 0, 1);
    let config = SimConfig::default()
        .with_seed(3)
        .with_churn_rules(rules)
        .with_lateness(lateness);
    let mut sim = Simulator::new(
        config,
        adversary,
        Box::new(|id, round| {
            if round == 0 {
                Gossip::seeded(id)
            } else {
                Gossip::default()
            }
        }),
    );
    sim.seed_nodes(N as usize);
    // Run round by round and record when (if ever) the newcomer "takes root":
    // the first round in which at least 5 live nodes other than its sponsor
    // know its identifier. An up-to-date adversary kills every node that could
    // spread the identifier before it does so, so the newcomer never takes
    // root; the 2-late adversary always reacts one gossip-cascade too late.
    let mut took_root: Option<u64> = None;
    let mut final_knowers = 0usize;
    for _ in 0..40 {
        sim.step();
        if let Some(v) = sim.adversary().victim() {
            let knowers = sim
                .nodes()
                .filter(|(id, g)| *id != v && g.contacts.contains(&v))
                .count();
            final_knowers = knowers;
            if knowers >= 5 && took_root.is_none() {
                took_root = Some(sim.round() - 1);
            }
        }
    }
    let spent: usize = sim
        .metrics()
        .rounds()
        .iter()
        .map(|m| m.departures + m.joins)
        .sum();
    match took_root {
        Some(r) => println!(
            "{label}: newcomer took root in round {r} ({final_knowers} live nodes know it at the end; churn spent: {spent})"
        ),
        None => println!(
            "{label}: newcomer NEVER took root — isolated ({final_knowers} live nodes know it; churn spent: {spent})"
        ),
    }
}

fn lemma4(min_bootstrap_age: u64, label: &str) {
    let rules = ChurnRules {
        max_events: Some(10_000),
        window: 1_000,
        min_bootstrap_age,
        bootstrap_rounds: 4,
        ..ChurnRules::default()
    };
    let adversary = JoinChainAdversary::new(4, 1, 2);
    let config = SimConfig::default()
        .with_seed(5)
        .with_churn_rules(rules)
        .with_lateness(Lateness::oblivious());
    let mut sim = Simulator::new(
        config,
        adversary,
        Box::new(|id, round| {
            if round == 0 {
                Gossip::seeded(id)
            } else {
                Gossip::default()
            }
        }),
    );
    sim.seed_nodes(N as usize);
    sim.run(40);
    let chain = sim.adversary().chain().to_vec();
    // How many chain nodes ever became known to anybody outside the chain?
    let last_edges = sim
        .records()
        .last()
        .map(|r| r.graph.edges.clone())
        .unwrap_or_default();
    let members = sim.member_ids();
    let head_isolated = chain
        .last()
        .map(|v| victim_is_isolated(&members, &last_edges, *v))
        .unwrap_or(false);
    println!(
        "{label}: chain links = {}, newest link isolated = {head_isolated}",
        chain.len()
    );
}

fn main() {
    println!("== Lemma 3: a topology-aware adversary isolates newcomers in a static overlay ==");
    lemma3(
        Lateness::zero_late_topology(),
        "  a = 0 (up-to-date adversary) ",
    );
    lemma3(
        Lateness {
            topology: 2,
            state: 1_000,
        },
        "  a = 2 (still enough vs. a static overlay)",
    );
    println!("  -> A static overlay loses newcomers even to a 2-late adversary, because who");
    println!("     will be contacted next is predictable from an old snapshot. This is exactly");
    println!("     why the paper's protocol rebuilds the whole overlay every 2 rounds: see the");
    println!("     `massive_churn` example, where the same 2-late adversary achieves nothing.");

    println!("\n== Lemma 4: why bootstrap nodes must be at least 2 rounds old ==");
    lemma4(1, "  join via 1-round-old nodes (weakened rule)");
    lemma4(2, "  join via >=2-round-old nodes (paper's rule)");
}
