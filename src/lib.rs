//! # two-steps-ahead
//!
//! A complete reproduction of *"Always be Two Steps Ahead of Your Enemy —
//! Maintaining a Routable Overlay under Massive Churn in Networks with an
//! Almost Up-to-date Adversary"* (Götte, Ravindran Vijayalakshmi, Scheideler).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`sim`] — round-synchronous simulator with an `(a,b)`-late adversary;
//! * [`event`] — deterministic virtual-time event engine: the same node
//!   logic under per-message latency, jitter and loss;
//! * [`net`] — loopback-TCP transport runtime: the same node logic over
//!   real sockets and wall-clock rounds, with a recorded message-fate trace
//!   that replays deterministically through [`event`];
//! * [`overlay`] — the Linearized DeBruijn Swarm and related topologies;
//! * [`routing`] — `A_ROUTING` and `A_SAMPLING`;
//! * [`maintenance`] — the `A_LDS` + `A_RANDOM` maintenance protocol
//!   (the paper's main contribution);
//! * [`adversary`] — attack strategies, including the Lemma 3 / Lemma 4
//!   impossibility constructions;
//! * [`baselines`] — SPARTAN-style, H_d-graph and Chord-with-swarms
//!   comparison overlays;
//! * [`analysis`] — statistics, uniformity tests and table rendering;
//! * [`obs`] — observability: deterministic counters/histograms and
//!   wall-clock phase spans, streaming metrics, progress reporting;
//! * [`dash`] — the presentation layer over [`obs`]: the flight-recorder
//!   journal, Chrome-trace/Perfetto export, the cross-PR perf trajectory
//!   and the live experiment dashboard;
//! * [`scenario`] — the fluent [`Scenario`](scenario::Scenario) builder that
//!   composes all of the above into runnable, serializable experiments;
//! * [`sweep`] — declarative parameter sweeps over `Scenario`: grid
//!   enumeration, parallel execution with streaming JSONL shards and resume,
//!   and replicate aggregation.
//!
//! See `README.md` for a quickstart, `DESIGN.md` for the system inventory and
//! `EXPERIMENTS.md` for the reproduction results.

#![warn(missing_docs)]

pub use tsa_adversary as adversary;
pub use tsa_analysis as analysis;
pub use tsa_baselines as baselines;
pub use tsa_core as maintenance;
pub use tsa_dash as dash;
pub use tsa_event as event;
pub use tsa_net as net;
pub use tsa_obs as obs;
pub use tsa_overlay as overlay;
pub use tsa_routing as routing;
pub use tsa_scenario as scenario;
pub use tsa_sim as sim;
pub use tsa_sweep as sweep;

/// The most frequently used items from across the workspace.
pub mod prelude {
    pub use tsa_adversary::{RandomChurnAdversary, TargetedSwarmAdversary};
    pub use tsa_core::{
        AsyncMaintenanceHarness, ByzantineSpec, MaintenanceHarness, MaintenanceParams,
        MaintenanceReport, MisbehaviorKind, NetMaintenanceHarness,
    };
    pub use tsa_dash::{DashConfig, JournalRecorder, RunJournal, TraceBuilder, TrajectoryRow};
    pub use tsa_event::{
        ExecutionModel, FaultAction, FaultPlan, FaultRule, LatencyModel, MessageTrace, NetModel,
        NodeSelector, PartitionSchedule, RegionAssign, RoundWindow, Topology,
    };
    pub use tsa_net::{NetConfig, NetRunner};
    pub use tsa_obs::{ObsHandle, ObsRecorder, ProgressSnapshot, Reporter};
    pub use tsa_overlay::{Lds, OverlayParams, Position};
    pub use tsa_routing::{RoutableSeries, RoutingConfig, RoutingSim};
    pub use tsa_scenario::{
        AdversarySpec, BaselineKind, ChurnSpec, MetricsMode, Scenario, ScenarioOutcome, ScenarioRun,
    };
    pub use tsa_sim::prelude::*;
    pub use tsa_sweep::{aggregate, RoundsSpec, SweepAggregate, SweepRunner, SweepSpec};
}
